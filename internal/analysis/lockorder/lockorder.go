// Package lockorder checks the engine's sanctioned lock hierarchy.
//
// The post-fanout hot path layers four tiers of mutexes — engine registry
// read lock, per-group mutex, fanout shard intake, pump queue — and the
// cluster layer adds the server/coordinator mutexes that the engine's
// hooks take underneath the registry lock. Total order under concurrent
// delivery only holds if every goroutine acquires these locks in one
// global order; one inverted pair is a latent deadlock that -race cannot
// see and that only bites under exactly the wrong interleaving.
//
// The order is declared once, in the rank table below, as ranks over lock
// identities (package.Type.field, resolved from the receiver of each
// Lock/RLock call). The analyzer walks every Lock()…Unlock() span in the
// core, cluster, transport, and placement packages and — reusing the
// whole-program call graph, interface dispatch and stored func-typed
// fields included — reports:
//
//   - an acquisition, direct or anywhere in the call graph below the
//     span, of a ranked lock at or below the rank of a held ranked lock
//     (inversion, or unordered same-tier nesting);
//   - any acquisition of an identity already held, whatever its rank
//     (same-mutex re-entry: sync.Mutex self-deadlocks, and a nested
//     RLock deadlocks against a writer waiting between the two).
//
// Identities not in the table (the seq counters, the WAL's pending-queue
// mutex, obs internals) impose no ordering; they are the sanctioned
// short nested sections. Acquisitions inside spawned goroutines are the
// spawned goroutine's business, not an edge under the caller's locks.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corona/internal/analysis"
	"corona/internal/analysis/callgraph"
	"corona/internal/analysis/lockid"
)

// Analyzer is the lockorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "checks lock acquisitions against the sanctioned engine.mu → group mu → fanout shard → pump mu hierarchy",
	Run:  run,
}

// ranks is the sanctioned hierarchy: a lock may only be acquired while
// every held ranked lock has a strictly lower rank. The engine tiers are
// fixed by the delivery pipeline design (DESIGN §2); the cluster and
// placement tiers sit between the engine registry lock they are taken
// under (via the engine's Forward/membership hooks) and the pump mutex
// their sends end in.
var ranks = map[string]int{
	"core.Engine.mu":         20,
	"core.groupRuntime.mu":   30,
	"core.fanoutShard.mu":    40,
	"cluster.Server.mu":      44,
	"cluster.Coordinator.mu": 44,
	"placement.Tracker.mu":   46,
	"transport.Pump.mu":      50,
}

// scoped are the packages whose lock spans are walked. Summaries are
// still computed for every analyzed package, so a span in core sees
// acquisitions made by a callee in wal or seq.
func scoped(name string) bool {
	switch name {
	case "core", "cluster", "transport", "placement":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		graph:     callgraph.New(pass.Pkgs),
		summaries: map[*types.Func]map[string]*acq{},
		state:     map[*types.Func]int{},
		litSums:   map[*ast.FuncLit]map[string]*acq{},
		litState:  map[*ast.FuncLit]int{},
		inlined:   map[*ast.FuncLit]bool{},
	}
	for _, pkg := range pass.Pkgs {
		if !scoped(pkg.Name) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkSpans(pkg, fd.Body.List, newHeld())
				}
			}
		}
	}
	// Function literals not walked inline above (goroutine bodies, stored
	// callbacks) are their own execution roots: walk each from an empty
	// held set. Enclosing literals walk before nested ones, so a literal
	// reached inline inside another root is marked before we get to it.
	for _, pkg := range pass.Pkgs {
		if !scoped(pkg.Name) {
			continue
		}
		var lits []*ast.FuncLit
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
				return true
			})
		}
		for _, lit := range lits {
			if !c.inlined[lit] {
				c.inlined[lit] = true
				c.checkSpans(pkg, lit.Body.List, newHeld())
			}
		}
	}
	return nil
}

// acq is one lock acquisition reachable from a function: the identity and
// a witness call chain for the diagnostic.
type acq struct {
	id    string
	chain []string
}

func (a *acq) String() string {
	if len(a.chain) == 0 {
		return a.id
	}
	return fmt.Sprintf("%s (via %s)", a.id, strings.Join(a.chain, " → "))
}

type checker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	// summaries memoizes, per function, every lock identity the function
	// may acquire directly or transitively.
	summaries map[*types.Func]map[string]*acq
	state     map[*types.Func]int // 0 unvisited, 1 visiting, 2 done
	litSums   map[*ast.FuncLit]map[string]*acq
	litState  map[*ast.FuncLit]int
	// inlined marks literals already walked as part of an enclosing span
	// (invoked, deferred, or spawned in place), so the root sweep skips them.
	inlined map[*ast.FuncLit]bool
}

// ---- held-lock tracking -------------------------------------------------

type held struct {
	order []string
	ids   map[string]bool
}

func newHeld() *held { return &held{ids: map[string]bool{}} }

func (h *held) clone() *held {
	c := newHeld()
	c.order = append(c.order, h.order...)
	for k := range h.ids {
		c.ids[k] = true
	}
	return c
}

func (h *held) acquire(id string) {
	if !h.ids[id] {
		h.ids[id] = true
		h.order = append(h.order, id)
	}
}

func (h *held) release(id string) {
	if !h.ids[id] {
		return
	}
	delete(h.ids, id)
	for i := len(h.order) - 1; i >= 0; i-- {
		if h.order[i] == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// ---- span walking -------------------------------------------------------

// checkSpans walks a statement list maintaining the held-lock set; every
// acquisition (direct or via a call) is checked against it.
func (c *checker) checkSpans(pkg *analysis.Package, stmts []ast.Stmt, h *held) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if id, op, ok := lockid.Op(pkg, s.X); ok {
				switch op {
				case "Lock", "RLock":
					c.checkAcquire(s.X.Pos(), h, &acq{id: id})
					h.acquire(id)
				case "Unlock", "RUnlock":
					h.release(id)
				}
				continue
			}
			// An immediately-invoked literal runs on this stack under the
			// current held set.
			if call, ok := s.X.(*ast.CallExpr); ok {
				if lit, ok := call.Fun.(*ast.FuncLit); ok {
					c.inlined[lit] = true
					c.checkSpans(pkg, lit.Body.List, h.clone())
					for _, a := range call.Args {
						c.checkExpr(pkg, a, h)
					}
					continue
				}
			}
			c.checkExpr(pkg, s.X, h)
		case *ast.DeferStmt:
			if id, op, ok := lockid.Op(pkg, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// The lock stays held to function exit; spans that follow
				// are still under it, which the held set already records.
				_ = id
				continue
			}
			// Deferred work runs before any deferred unlock registered
			// earlier, i.e. under the locks currently held.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				c.inlined[lit] = true
				c.checkSpans(pkg, lit.Body.List, h.clone())
			} else {
				c.checkExpr(pkg, s.Call, h)
			}
		case *ast.GoStmt:
			// The spawned goroutine is its own execution root: its body's
			// ordering is checked from an empty held set, and nothing it
			// acquires counts as an edge under the caller's locks.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				c.inlined[lit] = true
				c.checkSpans(pkg, lit.Body.List, newHeld())
			}
			for _, a := range s.Call.Args {
				c.checkExpr(pkg, a, h)
			}
		case *ast.BlockStmt:
			c.checkSpans(pkg, s.List, h)
		case *ast.IfStmt:
			if s.Init != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Init}, h)
			}
			c.checkExpr(pkg, s.Cond, h)
			c.checkSpans(pkg, s.Body.List, h.clone())
			if s.Else != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Else}, h.clone())
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Init}, h)
			}
			if s.Cond != nil {
				c.checkExpr(pkg, s.Cond, h)
			}
			inner := h.clone()
			c.checkSpans(pkg, s.Body.List, inner)
			if s.Post != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Post}, inner)
			}
		case *ast.RangeStmt:
			c.checkExpr(pkg, s.X, h)
			c.checkSpans(pkg, s.Body.List, h.clone())
		case *ast.SwitchStmt:
			if s.Init != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Init}, h)
			}
			if s.Tag != nil {
				c.checkExpr(pkg, s.Tag, h)
			}
			for _, cc := range s.Body.List {
				c.checkSpans(pkg, cc.(*ast.CaseClause).Body, h.clone())
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				c.checkSpans(pkg, []ast.Stmt{s.Init}, h)
			}
			for _, cc := range s.Body.List {
				c.checkSpans(pkg, cc.(*ast.CaseClause).Body, h.clone())
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				c.checkSpans(pkg, cl.(*ast.CommClause).Body, h.clone())
			}
		case *ast.LabeledStmt:
			c.checkSpans(pkg, []ast.Stmt{s.Stmt}, h)
		default:
			c.checkExpr(pkg, s, h)
		}
	}
}

// checkExpr checks every call in the subtree against the held set.
func (c *checker) checkExpr(pkg *analysis.Package, n ast.Node, h *held) {
	if n == nil || len(h.order) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				c.checkExpr(pkg, a, h)
			}
			return false
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				c.checkExpr(pkg, lit.Body, h)
				for _, a := range n.Args {
					c.checkExpr(pkg, a, h)
				}
				return false
			}
			if _, _, ok := lockid.Op(pkg, n); ok {
				return false // handled at statement level
			}
			for _, callee := range c.graph.Callees(pkg, n) {
				for _, a := range c.targetSummary(callee) {
					c.checkAcquire(n.Pos(), h, withHop(callee, a))
				}
			}
		}
		return true
	})
}

// checkAcquire reports an acquisition that re-enters a held identity or
// runs against the rank table.
func (c *checker) checkAcquire(pos token.Pos, h *held, a *acq) {
	if h.ids[a.id] {
		c.pass.Reportf(pos, "%s re-enters %q, already held", a, a.id)
		return
	}
	r, ranked := ranks[a.id]
	if !ranked {
		return
	}
	for i := len(h.order) - 1; i >= 0; i-- {
		hr, ok := ranks[h.order[i]]
		if !ok {
			continue
		}
		if r <= hr {
			c.pass.Reportf(pos, "%s acquired while %q is held: inverts the sanctioned order (rank %d ≤ %d)",
				a, h.order[i], r, hr)
			return
		}
	}
}

func withHop(t callgraph.Target, a *acq) *acq {
	return &acq{id: a.id, chain: append([]string{t.Name()}, a.chain...)}
}

// ---- transitive summaries -----------------------------------------------

func (c *checker) targetSummary(t callgraph.Target) map[string]*acq {
	if t.Lit != nil {
		return c.litSummary(t.Lit, t.Pkg)
	}
	return c.funcSummary(t.Fn)
}

func (c *checker) litSummary(lit *ast.FuncLit, pkg *analysis.Package) map[string]*acq {
	if c.litState[lit] == 2 {
		return c.litSums[lit]
	}
	if c.litState[lit] == 1 {
		return nil
	}
	c.litState[lit] = 1
	sum := c.bodySummary(pkg, lit.Body)
	c.litSums[lit], c.litState[lit] = sum, 2
	return sum
}

// funcSummary returns every lock identity fn may acquire, transitively.
func (c *checker) funcSummary(fn *types.Func) map[string]*acq {
	if c.state[fn] == 2 {
		return c.summaries[fn]
	}
	if c.state[fn] == 1 {
		return nil // recursion cycle: first visit collects its locks
	}
	body, analyzed := c.graph.Bodies[fn]
	if !analyzed {
		c.summaries[fn], c.state[fn] = nil, 2
		return nil
	}
	c.state[fn] = 1
	sum := c.bodySummary(body.Pkg, body.Decl.Body)
	c.summaries[fn], c.state[fn] = sum, 2
	return sum
}

// bodySummary collects acquisitions in one body: direct Lock/RLock calls
// plus the summaries of every callee, goroutine bodies excluded, deferred
// closures included.
func (c *checker) bodySummary(pkg *analysis.Package, body *ast.BlockStmt) map[string]*acq {
	sum := map[string]*acq{}
	add := func(a *acq) {
		if _, ok := sum[a.id]; !ok {
			sum[a.id] = a
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				for _, a := range n.Call.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				for _, a := range n.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			if id, op, ok := lockid.Op(pkg, n); ok {
				if op == "Lock" || op == "RLock" {
					add(&acq{id: id})
				}
				return false
			}
			for _, callee := range c.graph.Callees(pkg, n) {
				for _, a := range c.targetSummary(callee) {
					add(withHop(callee, a))
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return sum
}
