package lockorder_test

import (
	"testing"

	"corona/internal/analysis/analysistest"
	"corona/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer)
}
