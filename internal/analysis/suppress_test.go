package analysis

import (
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text          string
		want          allowDirective
		ok, malformed bool
	}{
		{"//lint:allow lockhold shutdown path, single-threaded",
			allowDirective{analyzers: []string{"lockhold"}, reason: "shutdown path, single-threaded"}, true, false},
		{"// lint:allow cowsafe buffer proven private",
			allowDirective{analyzers: []string{"cowsafe"}, reason: "buffer proven private"}, true, false},
		{"//lint:allow lockhold,obshygiene startup only",
			allowDirective{analyzers: []string{"lockhold", "obshygiene"}, reason: "startup only"}, true, false},
		// Not directives at all.
		{"// plain comment", allowDirective{}, false, false},
		{"//nolint:gocritic", allowDirective{}, false, false},
		// Directives missing the mandatory parts.
		{"//lint:allow", allowDirective{}, true, true},
		{"//lint:allow lockhold", allowDirective{}, true, true}, // no reason
		{"//lint:allow ,lockhold some reason", allowDirective{}, true, true},
	}
	for _, c := range cases {
		d, ok, malformed := parseAllow(c.text)
		if ok != c.ok || malformed != c.malformed {
			t.Errorf("parseAllow(%q): ok=%v malformed=%v, want ok=%v malformed=%v",
				c.text, ok, malformed, c.ok, c.malformed)
			continue
		}
		if ok && !malformed && !reflect.DeepEqual(d, c.want) {
			t.Errorf("parseAllow(%q) = %+v, want %+v", c.text, d, c.want)
		}
	}
}

func TestSuppressionCoverage(t *testing.T) {
	s := &suppressions{byLine: map[string]map[int][]*allowDirective{}}
	d := &allowDirective{analyzers: []string{"lockhold"}, reason: "r"}
	s.all = append(s.all, d)
	cover(s, "f.go", 10, d)

	pos := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if len(s.stale()) != 1 {
		t.Error("directive that suppressed nothing yet is not stale")
	}
	if !s.allows("lockhold", pos(10)) {
		t.Error("directive does not cover its own line")
	}
	if len(s.stale()) != 0 {
		t.Error("directive stayed stale after suppressing a finding")
	}
	if s.allows("lockhold", pos(11)) {
		t.Error("inline directive must not leak to the next line")
	}
	if s.allows("cowsafe", pos(10)) {
		t.Error("directive covers an analyzer it does not name")
	}
	if s.allows("lockhold", token.Position{Filename: "g.go", Line: 10}) {
		t.Error("directive covers another file")
	}
}
