// Package aliasretain polices the wire codec's zero-copy contract from
// both sides.
//
// Decode functions annotated //corona:aliases-input (Decoder.Bytes,
// decodeObjectsAlias, DecodeTransferPayload, …) return slices that alias
// the caller's input buffer. Callers therefore must treat the results as
// borrowed: the analyzer flags
//
//   - mutation — element writes, copy-into, or appends building on an
//     aliased slice, all of which can scribble on the shared buffer;
//   - retention — storing an aliased slice into a struct field or a
//     package-level variable, which outlives the decode call. Returning
//     the value or placing it in a composite literal is the documented
//     handoff and stays legal: the alias contract travels with the
//     function's own doc comment.
//
// Conversely, functions annotated //corona:zerocopy form the
// TransferStream fast path whose whole purpose is not copying. Inside
// them, defensive copies — ByteCopy, bytes.Clone, or the
// append([]byte(nil), x...) clone idiom — are flagged as regressions.
//
// Taint is tracked intra-function through locals, indexing, re-slicing,
// and container inserts; annotations are collected program-wide, so
// misuse in core or transport is caught, not just in internal/wire.
package aliasretain

import (
	"go/ast"
	"go/types"
	"strings"

	"corona/internal/analysis"
)

// Analyzer is the aliasretain checker.
var Analyzer = &analysis.Analyzer{
	Name: "aliasretain",
	Doc:  "flags retention or mutation of decode-buffer aliases, and needless copies on the zero-copy path",
	Run:  run,
}

const (
	markAliases  = "corona:aliases-input"
	markZerocopy = "corona:zerocopy"
)

func run(pass *analysis.Pass) error {
	marked := map[*types.Func]bool{}
	var zerocopy []bodyIn
	var all []bodyIn
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b := bodyIn{pkg: pkg, decl: fd}
				all = append(all, b)
				if hasMarker(fd.Doc, markAliases) {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						marked[fn] = true
					}
				}
				if hasMarker(fd.Doc, markZerocopy) {
					zerocopy = append(zerocopy, b)
				}
			}
		}
	}
	for _, b := range all {
		w := &walker{pass: pass, pkg: b.pkg, marked: marked, taint: map[types.Object]string{}}
		w.walk(b.decl.Body)
	}
	for _, b := range zerocopy {
		checkZerocopy(pass, b)
	}
	return nil
}

type bodyIn struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// walker tracks which locals alias a decode input within one function.
type walker struct {
	pass   *analysis.Pass
	pkg    *analysis.Package
	marked map[*types.Func]bool
	taint  map[types.Object]string // object → originating marked function
}

func (w *walker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.RangeStmt:
			if org := w.origin(n.X); org != "" {
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.pkg.Info.Defs[id]; obj != nil {
							w.taint[obj] = org
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if org := w.origin(n.X); org != "" {
				w.pass.Reportf(n.Pos(), "write through slice aliasing the decode input (from %s); the caller's buffer would be corrupted", org)
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *walker) assign(a *ast.AssignStmt) {
	// Multi-value form: x, y, err := DecodeTransferPayload(data) taints
	// every non-error result.
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if org := w.callOrigin(a.Rhs[0]); org != "" {
			for _, lhs := range a.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := w.defOrUse(id); obj != nil && !isErr(obj) {
						w.taint[obj] = org
					}
				}
			}
		}
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		lhs, rhs := a.Lhs[i], a.Rhs[i]
		org := w.origin(rhs)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := w.defOrUse(l)
			if obj == nil {
				continue
			}
			if org != "" {
				if obj.Parent() == w.pkg.Types.Scope() {
					w.pass.Reportf(a.Pos(), "slice aliasing the decode input (from %s) retained in package-level %s; copy before storing", org, l.Name)
					continue
				}
				w.taint[obj] = org
			} else {
				delete(w.taint, obj)
			}
		case *ast.SelectorExpr:
			if org != "" {
				w.pass.Reportf(a.Pos(), "slice aliasing the decode input (from %s) retained in %s; copy before storing", org, types.ExprString(lhs))
				continue
			}
			if base := w.origin(l.X); base != "" {
				w.pass.Reportf(a.Pos(), "write through slice aliasing the decode input (from %s); the caller's buffer would be corrupted", base)
			}
		case *ast.IndexExpr:
			if base := w.origin(l.X); base != "" {
				w.pass.Reportf(a.Pos(), "write through slice aliasing the decode input (from %s); the caller's buffer would be corrupted", base)
				continue
			}
			// Inserting a tainted value into a local container taints the
			// container: the alias now travels with it.
			if org != "" {
				if id, ok := innerIdent(l.X); ok {
					if obj := w.defOrUse(id); obj != nil {
						w.taint[obj] = org
					}
				}
			}
		}
	}
}

func (w *walker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy":
				if len(call.Args) == 2 {
					if org := w.origin(call.Args[0]); org != "" {
						w.pass.Reportf(call.Pos(), "copy into slice aliasing the decode input (from %s); the caller's buffer would be corrupted", org)
					}
				}
			case "append":
				if len(call.Args) > 0 {
					if org := w.origin(call.Args[0]); org != "" {
						w.pass.Reportf(call.Pos(), "append building on slice aliasing the decode input (from %s) may write into the shared buffer; clone first", org)
					}
				}
			}
		}
	}
}

// callOrigin reports whether e is a direct call to an aliases-input
// function, returning that function's name.
func (w *walker) callOrigin(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = w.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = w.pkg.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn != nil && w.marked[fn] {
		return fn.Name()
	}
	return ""
}

// origin reports the marked function an expression's memory traces back
// to, or "".
func (w *walker) origin(e ast.Expr) string {
	if org := w.callOrigin(e); org != "" {
		return org
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return w.taint[obj]
		}
	case *ast.SelectorExpr:
		return w.origin(e.X)
	case *ast.IndexExpr:
		return w.origin(e.X)
	case *ast.SliceExpr:
		return w.origin(e.X)
	case *ast.StarExpr:
		return w.origin(e.X)
	case *ast.UnaryExpr:
		return w.origin(e.X)
	}
	return ""
}

func (w *walker) defOrUse(id *ast.Ident) types.Object {
	if obj := w.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Uses[id]
}

func innerIdent(e ast.Expr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return id, ok
}

func isErr(obj types.Object) bool {
	return obj.Type() != nil && obj.Type().String() == "error"
}

// checkZerocopy flags defensive copies inside a //corona:zerocopy
// function: ByteCopy / bytes.Clone calls and append-onto-fresh-base
// clone idioms.
func checkZerocopy(pass *analysis.Pass, b bodyIn) {
	ast.Inspect(b.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "ByteCopy" {
				pass.Reportf(call.Pos(), "needless copy on //corona:zerocopy path: ByteCopy defeats the zero-copy transfer contract")
			}
			if b, ok := b.pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 1 && isFreshSliceBase(call.Args[0]) {
				pass.Reportf(call.Pos(), "needless copy on //corona:zerocopy path: append onto a fresh base clones the buffer")
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Clone" || fun.Sel.Name == "ByteCopy" {
				pass.Reportf(call.Pos(), "needless copy on //corona:zerocopy path: %s defeats the zero-copy transfer contract", types.ExprString(fun))
			}
		}
		return true
	})
}

func isFreshSliceBase(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr: // conversion like []byte(nil)
		if len(e.Args) == 1 {
			if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
				return id.Name == "nil"
			}
		}
	}
	return false
}
