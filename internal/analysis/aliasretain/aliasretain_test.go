package aliasretain_test

import (
	"testing"

	"corona/internal/analysis/aliasretain"
	"corona/internal/analysis/analysistest"
)

func TestAliasretain(t *testing.T) {
	analysistest.Run(t, "testdata", aliasretain.Analyzer)
}
