// Package wire is an aliasretain fixture: a decoder whose Bytes result
// aliases the input, a payload decoder built on it, and a zero-copy
// streaming path.
package wire

type Decoder struct {
	buf []byte
	off int
}

// Bytes returns the next n bytes of the input.
//
// corona:aliases-input — the result aliases the decode buffer; callers
// must copy before retaining or mutating.
func (d *Decoder) Bytes(n int) []byte {
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// DecodePayload splits data into object buffers and an event tail.
//
// corona:aliases-input — both results alias data.
func DecodePayload(data []byte) (map[string][]byte, []byte, error) {
	d := &Decoder{buf: data}
	objects := map[string][]byte{}
	objects["a"] = d.Bytes(4) // handoff into the aliased result set: fine
	return objects, d.Bytes(4), nil
}

// ByteCopy is the explicit clone helper.
func ByteCopy(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// --- conforming callers --------------------------------------------------

type Frame struct {
	payload []byte
}

func decodeFrame(data []byte) *Frame {
	d := &Decoder{buf: data}
	p := d.Bytes(8)
	return &Frame{payload: p} // composite-literal handoff: fine
}

func decodeAndCopy(data []byte) *Frame {
	d := &Decoder{buf: data}
	f := &Frame{}
	f.payload = ByteCopy(d.Bytes(8)) // copied first: fine
	return f
}

// --- violating callers ---------------------------------------------------

var lastPayload []byte

type Session struct {
	scratch []byte
}

func (s *Session) retain(data []byte) {
	d := &Decoder{buf: data}
	p := d.Bytes(8)
	s.scratch = p // want `aliasing the decode input \(from Bytes\) retained in s\.scratch`
}

func retainGlobal(data []byte) {
	d := &Decoder{buf: data}
	lastPayload = d.Bytes(8) // want `aliasing the decode input \(from Bytes\) retained in package-level lastPayload`
}

func mutate(data []byte) {
	d := &Decoder{buf: data}
	p := d.Bytes(8)
	p[0] = 1            // want `write through slice aliasing the decode input \(from Bytes\)`
	copy(p, data)       // want `copy into slice aliasing the decode input \(from Bytes\)`
	_ = append(p, 0xff) // want `append building on slice aliasing the decode input \(from Bytes\)`
}

func mutateViaPayload(data []byte) {
	objects, tail, _ := DecodePayload(data)
	objects["a"][0] = 1 // want `write through slice aliasing the decode input \(from DecodePayload\)`
	tail[1] = 2         // want `write through slice aliasing the decode input \(from DecodePayload\)`
}

func allowedRetain(data []byte, s *Session) {
	d := &Decoder{buf: data}
	//lint:allow aliasretain scratch is reset before the next decode
	s.scratch = d.Bytes(8)
}

// --- zero-copy path ------------------------------------------------------

// StreamNext hands a chunk straight from the payload.
//
// corona:zerocopy — no defensive copies on this path.
func StreamNext(payload []byte, n int) []byte {
	if n > len(payload) {
		n = len(payload)
	}
	return payload[:n] // fine: sliced, not copied
}

// StreamNextSlow regresses the zero-copy contract.
//
// corona:zerocopy
func StreamNextSlow(payload []byte, n int) []byte {
	chunk := ByteCopy(payload[:n])        // want `needless copy on //corona:zerocopy path: ByteCopy`
	chunk = append([]byte(nil), chunk...) // want `needless copy on //corona:zerocopy path: append onto a fresh base`
	return chunk
}
