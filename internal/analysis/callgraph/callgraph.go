// Package callgraph is the shared call-resolution layer under the
// whole-program analyzers (lockhold, lockorder). It indexes every function
// declared in the analyzed program and resolves call expressions to the
// functions they may invoke:
//
//   - static calls (identifier or package-qualified) to their declaration;
//   - interface method calls to every implementation in the program, with
//     the interface method itself kept as a candidate so stdlib interfaces
//     classify by name even without an analyzed implementation;
//   - calls through stored func-typed struct fields (the engine's Hooks,
//     the WAL's completion callbacks) to every function value assigned to
//     that field anywhere in the program — by field assignment, composite
//     literal, or keyed literal element. This closed what lockhold's
//     original implementation documented as its one acknowledged hole.
//
// Calls through plain func-typed locals and parameters remain unresolved:
// without a heap model their value set is unbounded, and the repo's
// conventions route long-lived behaviour through fields, not loose values.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/types"

	"corona/internal/analysis"
)

// A Target is one possible callee: either a declared function (Fn non-nil)
// or an anonymous function literal (Lit non-nil) stored into a func-typed
// field.
type Target struct {
	Fn  *types.Func
	Lit *ast.FuncLit
	Pkg *analysis.Package // owning package (always set for Lit, nil for Fn without a body)
}

// Name renders the target for diagnostics.
func (t Target) Name() string {
	if t.Fn != nil {
		return FuncName(t.Fn)
	}
	return "func literal"
}

// A Body is one analyzed function body and its owning package.
type Body struct {
	Pkg  *analysis.Package
	Decl *ast.FuncDecl
}

// Graph indexes the program's functions, named types, and func-field
// assignments for call resolution.
type Graph struct {
	// Bodies maps every function declared in the program to its body.
	Bodies map[*types.Func]*Body
	// named lists the program's named types, for interface resolution.
	named []*types.Named
	// fieldFuncs maps a func-typed struct field to every function value
	// the program stores into it.
	fieldFuncs map[*types.Var][]Target
}

// New builds the graph over the whole analyzed program.
func New(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Bodies:     map[*types.Func]*Body{},
		fieldFuncs: map[*types.Var][]Target{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.Bodies[fn] = &Body{Pkg: pkg, Decl: fd}
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, n)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		g.collectFieldFuncs(pkg)
	}
	return g
}

// collectFieldFuncs records every function value the package stores into a
// func-typed struct field, via assignment or composite literal.
func (g *Graph) collectFieldFuncs(pkg *analysis.Package) {
	record := func(obj types.Object, rhs ast.Expr) {
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			return
		}
		if t, ok := g.funcValue(pkg, rhs); ok {
			g.fieldFuncs[v] = append(g.fieldFuncs[v], t)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
						record(obj, n.Rhs[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := pkg.Info.Uses[key]; obj != nil {
						record(obj, kv.Value)
					}
				}
			}
			return true
		})
	}
}

// funcValue resolves an expression used as a stored function value.
func (g *Graph) funcValue(pkg *analysis.Package, e ast.Expr) (Target, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return Target{Lit: e, Pkg: pkg}, true
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return Target{Fn: fn}, true
		}
	case *ast.SelectorExpr:
		// Method value (x.Method) or package-qualified function.
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return Target{Fn: fn}, true
		}
	}
	return Target{}, false
}

// Callees resolves a call to the targets it may invoke: one for a static
// call, every analyzed implementation for an interface method call, every
// stored value for a func-typed field call, none for calls through plain
// function-typed locals.
func (g *Graph) Callees(pkg *analysis.Package, call *ast.CallExpr) []Target {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []Target{{Fn: fn}}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Function-typed field: resolve against every value the
				// program stores into it.
				if v, ok := sel.Obj().(*types.Var); ok {
					return g.fieldFuncs[v]
				}
				return nil
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(Deref(sel.Recv())) {
				return g.Implementations(Deref(sel.Recv()).Underlying().(*types.Interface), fn)
			}
			return []Target{{Fn: fn}}
		}
		// Package-qualified call (fmt.Println).
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []Target{{Fn: fn}}
		}
	}
	return nil
}

// Implementations returns the concrete methods the interface method m may
// dispatch to: for every named type of the analyzed program implementing
// iface, the method with m's name. The interface method itself is kept as
// a candidate so stdlib interfaces (io.Writer, net.Conn) classify by name
// even with no analyzed implementation.
func (g *Graph) Implementations(iface *types.Interface, m *types.Func) []Target {
	out := []Target{{Fn: m}}
	for _, n := range g.named {
		if types.IsInterface(n) {
			continue
		}
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, Target{Fn: fn})
		}
	}
	return out
}

// Deref unwraps one level of pointer type.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// FuncName renders a function with its receiver for diagnostics.
func FuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
