// Package atomicsafe checks that every shared field is accessed through
// exactly one synchronization discipline.
//
// Two checks, one rule — a field's readers and writers must agree on how
// the field is protected:
//
//  1. Mixed atomics. A field passed to the sync/atomic functions anywhere
//     in the program must be accessed that way everywhere: a plain load
//     or store of the same field races with the atomic operations, and
//     the race detector only catches it when both sides actually collide
//     under test. Every plain access of such a field is reported.
//
//  2. Guarded fields left unguarded. A field whose writes all happen
//     under its owner's mutex is a mutex-guarded field; reading it
//     without that mutex (or writing it on one sneaky path) observes
//     torn or stale state. The guard is inferred, not declared: a write
//     under a held `owner.mu` span pins the discipline, and every other
//     access must either hold the same identity or sit in a function
//     whose contract says the caller does — the repo-wide `...Locked`
//     suffix and "Caller holds" doc conventions.
//
// The analysis is type-based like lockorder's: the guard of one
// groupRuntime covers every groupRuntime. Constructors (New*, init) are
// exempt — pre-publication writes need no lock. Fields that are
// themselves synchronization values (sync.Mutex, sync.WaitGroup, typed
// atomics) carry their own discipline and are skipped.
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corona/internal/analysis"
	"corona/internal/analysis/callgraph"
	"corona/internal/analysis/lockid"
)

// Analyzer is the atomicsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc:  "flags fields mixing sync/atomic with plain access, and lock-free access to mutex-guarded fields",
	Run:  run,
}

// scoped are the packages whose accesses are checked. Matches lockorder:
// the invariant surface of the delivery pipeline.
func scoped(name string) bool {
	switch name {
	case "core", "cluster", "transport", "placement":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		atomics:  map[*types.Var]bool{},
		atomArgs: map[*ast.SelectorExpr]bool{},
		accesses: map[*types.Var][]access{},
		owners:   map[*types.Var]*types.Named{},
	}
	// Atomic-field discovery runs over the whole program: a helper package
	// touching a core field atomically pins the field's discipline even if
	// the helper itself is out of scope.
	for _, pkg := range pass.Pkgs {
		c.collectAtomics(pkg)
	}
	for _, pkg := range pass.Pkgs {
		if !scoped(pkg.Name) {
			continue
		}
		c.collectAccesses(pkg)
	}
	c.reportMixed()
	c.reportUnguarded()
	return nil
}

// access is one read or write of a struct field at a specific site.
type access struct {
	pos   token.Pos
	write bool
	// held is the owner-guard identity held at the site, "" if none.
	held string
	// contract marks sites inside functions whose name or doc promises
	// the caller holds the guard (FooLocked, "Caller holds ...").
	contract bool
	// plainOfAtomic marks a non-atomic access of an atomic field.
	atomic bool
}

type checker struct {
	pass *analysis.Pass
	// atomics is every field passed by address to a sync/atomic function.
	atomics map[*types.Var]bool
	// atomArgs marks the selector nodes that ARE atomic accesses, so the
	// plain-access sweep can skip them.
	atomArgs map[*ast.SelectorExpr]bool
	// accesses records every field access in scoped packages.
	accesses map[*types.Var][]access
	owners   map[*types.Var]*types.Named
}

// ---- check 1: atomic fields ----------------------------------------------

// collectAtomics records fields whose address flows into sync/atomic
// calls, and marks those argument positions as sanctioned.
func (c *checker) collectAtomics(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(pkg, sel); v != nil {
					c.atomics[v] = true
					c.atomArgs[sel] = true
				}
			}
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it denotes, with no
// scoping: an atomic access anywhere pins the field's discipline.
func fieldOf(pkg *analysis.Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func (c *checker) reportMixed() {
	for v, accs := range c.accesses {
		if !c.atomics[v] {
			continue
		}
		id := lockid.FieldIdent(c.owners[v], v.Name())
		for _, a := range accs {
			if a.atomic {
				continue
			}
			kind := "load"
			if a.write {
				kind = "store"
			}
			c.pass.Reportf(a.pos, "plain %s of %q, which is accessed with sync/atomic elsewhere: the two race", kind, id)
		}
	}
}

// ---- check 2: mutex-guarded fields ---------------------------------------

func (c *checker) reportUnguarded() {
	for v, accs := range c.accesses {
		if c.atomics[v] {
			continue // discipline is atomics, handled above
		}
		// The discipline is pinned by direct evidence: at least one write
		// under a held owner guard. All such writes must agree on one
		// guard identity; if they don't, the field has no single guard
		// and is skipped.
		guard := ""
		conflicted := false
		for _, a := range accs {
			if a.write && a.held != "" {
				if guard == "" {
					guard = a.held
				} else if guard != a.held {
					conflicted = true
				}
			}
		}
		if guard == "" || conflicted {
			continue
		}
		// A write outside the guard breaks the discipline outright and is
		// the sharpest diagnostic; reads are only trustworthy once every
		// write is covered.
		plainWrite := false
		for _, a := range accs {
			if a.write && a.held == "" && !a.contract {
				c.pass.Reportf(a.pos, "write to %q without %q, which guards every other write", lockid.FieldIdent(c.owners[v], v.Name()), guard)
				plainWrite = true
			}
		}
		if plainWrite {
			continue
		}
		for _, a := range accs {
			if !a.write && a.held == "" && !a.contract {
				c.pass.Reportf(a.pos, "read of %q without %q, which guards every write to it", lockid.FieldIdent(c.owners[v], v.Name()), guard)
			}
		}
	}
}

// ---- access collection ----------------------------------------------------

// collectAccesses walks every function body tracking held guards and
// records each field access with its protection context.
func (c *checker) collectAccesses(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isConstructor(fd) {
				continue // pre-publication writes carry no discipline
			}
			w := &walker{checker: c, pkg: pkg, contract: hasContract(fd)}
			w.stmts(fd.Body.List, map[string]bool{})
		}
	}
}

// isConstructor matches functions whose writes precede publication.
func isConstructor(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// hasContract reports whether the function declares that its caller holds
// the relevant lock: the ...Locked naming convention or a "Caller holds"
// doc line.
func hasContract(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "aller holds")
}

// walker records accesses within one function body, maintaining the set
// of held lock identities exactly as lockorder does.
type walker struct {
	*checker
	pkg      *analysis.Package
	contract bool
}

func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if id, op, ok := lockid.Op(w.pkg, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[id] = true
				case "Unlock", "RUnlock":
					delete(held, id)
				}
				continue
			}
			if call, ok := s.X.(*ast.CallExpr); ok {
				if lit, ok := call.Fun.(*ast.FuncLit); ok {
					w.stmts(lit.Body.List, clone(held))
					for _, a := range call.Args {
						w.expr(a, held, false)
					}
					continue
				}
			}
			w.expr(s.X, held, false)
		case *ast.DeferStmt:
			if _, op, ok := lockid.Op(w.pkg, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				continue
			}
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, clone(held))
			} else {
				w.expr(s.Call, held, false)
			}
		case *ast.GoStmt:
			// The goroutine body runs with no lock of this stack held.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				w.goBody(lit, held)
			}
			for _, a := range s.Call.Args {
				w.expr(a, held, false)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				w.writeTarget(lhs, held)
			}
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// Compound assignment also reads the target; the write
				// record above covers the stricter requirement.
			}
			for _, rhs := range s.Rhs {
				w.expr(rhs, held, false)
			}
		case *ast.IncDecStmt:
			w.writeTarget(s.X, held)
		case *ast.BlockStmt:
			w.stmts(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				w.stmts([]ast.Stmt{s.Init}, held)
			}
			w.expr(s.Cond, held, false)
			w.stmts(s.Body.List, clone(held))
			if s.Else != nil {
				w.stmts([]ast.Stmt{s.Else}, clone(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				w.stmts([]ast.Stmt{s.Init}, held)
			}
			if s.Cond != nil {
				w.expr(s.Cond, held, false)
			}
			inner := clone(held)
			w.stmts(s.Body.List, inner)
			if s.Post != nil {
				w.stmts([]ast.Stmt{s.Post}, inner)
			}
		case *ast.RangeStmt:
			w.expr(s.X, held, false)
			w.stmts(s.Body.List, clone(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.stmts([]ast.Stmt{s.Init}, held)
			}
			if s.Tag != nil {
				w.expr(s.Tag, held, false)
			}
			for _, cc := range s.Body.List {
				w.stmts(cc.(*ast.CaseClause).Body, clone(held))
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				w.stmts([]ast.Stmt{s.Init}, held)
			}
			for _, cc := range s.Body.List {
				w.stmts(cc.(*ast.CaseClause).Body, clone(held))
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				w.stmts(cl.(*ast.CommClause).Body, clone(held))
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				w.expr(r, held, false)
			}
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{s.Stmt}, held)
		case *ast.DeclStmt:
			w.expr(s, held, false)
		case *ast.SendStmt:
			w.expr(s.Chan, held, false)
			w.expr(s.Value, held, false)
		}
	}
}

// goBody walks a spawned goroutine: its own stack, empty held set, and no
// contract — the caller's promises do not transfer across the spawn.
func (w *walker) goBody(lit *ast.FuncLit, held map[string]bool) {
	inner := &walker{checker: w.checker, pkg: w.pkg}
	inner.stmts(lit.Body.List, map[string]bool{})
}

// writeTarget records a write access for an assignment target. Mutating
// an element of a field-held map or slice (x.f[k] = v, delete(x.f, k))
// counts as a write to the field: the race is the same.
func (w *walker) writeTarget(lhs ast.Expr, held map[string]bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		w.record(lhs, held, true)
		w.expr(lhs.X, held, false)
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
			w.record(sel, held, true)
			w.expr(sel.X, held, false)
		} else {
			w.expr(lhs.X, held, false)
		}
		w.expr(lhs.Index, held, false)
	case *ast.StarExpr:
		w.expr(lhs.X, held, false)
	default:
		w.expr(lhs, held, false)
	}
}

// expr records every field access in an expression subtree as reads,
// except nodes handled elsewhere.
func (w *walker) expr(n ast.Node, held map[string]bool, _ bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Reached here only when stored or passed: runs later, on an
			// unknown stack.
			w.goBody(n, held)
			return false
		case *ast.CallExpr:
			// delete(x.f, k) mutates the map held by f.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if sel, ok := ast.Unparen(n.Args[0]).(*ast.SelectorExpr); ok {
						w.record(sel, held, true)
						w.expr(sel.X, held, false)
						w.expr(n.Args[1], held, false)
						return false
					}
				}
			}
		case *ast.SelectorExpr:
			if w.atomArgs[n] {
				w.recordAtomic(n, held)
				return false
			}
			w.record(n, held, false)
			// Keep walking: the base of x.f.g is itself an access.
		}
		return true
	})
}

// record notes one access of a struct field, if it is one worth tracking.
func (w *walker) record(sel *ast.SelectorExpr, held map[string]bool, write bool) {
	v, owner := w.trackedField(sel)
	if v == nil {
		return
	}
	w.owners[v] = owner
	w.accesses[v] = append(w.accesses[v], access{
		pos:      sel.Sel.Pos(),
		write:    write,
		held:     heldGuard(owner, held),
		contract: w.contract,
	})
}

// recordAtomic notes a sanctioned atomic access, so mixed-discipline
// reporting sees the field even when the plain sites are elsewhere.
func (w *walker) recordAtomic(sel *ast.SelectorExpr, held map[string]bool) {
	v, owner := w.trackedField(sel)
	if v == nil {
		return
	}
	w.owners[v] = owner
	w.accesses[v] = append(w.accesses[v], access{pos: sel.Sel.Pos(), atomic: true})
}

// trackedField resolves a selector to a struct field of a named type,
// skipping fields that carry their own synchronization.
func (w *walker) trackedField(sel *ast.SelectorExpr) (*types.Var, *types.Named) {
	s, ok := w.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	owner, ok := callgraph.Deref(s.Recv()).(*types.Named)
	if !ok || owner.Obj().Pkg() == nil || !scoped(owner.Obj().Pkg().Name()) {
		return nil, nil
	}
	if selfSynced(v.Type()) {
		return nil, nil
	}
	return v, owner
}

// selfSynced reports types that synchronize themselves: the sync package's
// primitives and the typed atomics.
func selfSynced(t types.Type) bool {
	n, ok := callgraph.Deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// heldGuard returns the identity of an owner mutex field currently held.
func heldGuard(owner *types.Named, held map[string]bool) string {
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !lockid.IsMutex(f.Type()) {
			continue
		}
		if id := lockid.FieldIdent(owner, f.Name()); held[id] {
			return id
		}
	}
	return ""
}

func clone(held map[string]bool) map[string]bool {
	c := map[string]bool{}
	for k := range held {
		c[k] = true
	}
	return c
}
