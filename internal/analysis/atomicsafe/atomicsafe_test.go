package atomicsafe_test

import (
	"testing"

	"corona/internal/analysis/analysistest"
	"corona/internal/analysis/atomicsafe"
)

func TestAtomicsafe(t *testing.T) {
	analysistest.Run(t, "testdata", atomicsafe.Analyzer)
}
