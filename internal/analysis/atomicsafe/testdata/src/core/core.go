// Package core is the atomicsafe fixture: one struct whose counters are
// atomics, one whose fields are guarded by its mutex, each exercised with
// the discipline (silent) and against it (reported).
package core

import (
	"sync"
	"sync/atomic"
)

// --- mixed atomic and plain access ---------------------------------------

type Stats struct {
	hits   int64
	misses int64
}

// bump pins the discipline: hits is an atomic field.
func (s *Stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

// get reads it the same way: conforming.
func (s *Stats) get() int64 {
	return atomic.LoadInt64(&s.hits)
}

// peek reads the atomic field with a plain load.
func (s *Stats) peek() int64 {
	return s.hits // want `plain load of "core\.Stats\.hits", which is accessed with sync/atomic elsewhere: the two race`
}

// reset stores over concurrent atomic adds.
func (s *Stats) reset() {
	s.hits = 0 // want `plain store of "core\.Stats\.hits", which is accessed with sync/atomic elsewhere: the two race`
}

// missed never touches atomics: plain access of misses carries no mixed
// discipline and stays silent here (and has no mutex guard either).
func (s *Stats) missed() int64 {
	s.misses++
	return s.misses
}

// --- mutex-guarded fields --------------------------------------------------

type Group struct {
	mu      sync.Mutex
	members map[string]bool
	size    int
}

// NewGroup writes pre-publication: constructors carry no discipline.
func NewGroup() *Group {
	g := &Group{members: map[string]bool{}}
	g.size = 0
	return g
}

// Add pins both fields to g.mu: element writes count as field writes.
func (g *Group) Add(m string) {
	g.mu.Lock()
	g.members[m] = true
	g.size++
	g.mu.Unlock()
}

// Remove deletes under the same guard.
func (g *Group) Remove(m string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.members, m)
	g.size--
}

// Size reads under the guard: conforming.
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.size
}

// hasLocked relies on the naming contract: the caller holds g.mu.
func (g *Group) hasLocked(m string) bool {
	return g.members[m]
}

// snapshot documents the contract instead. Caller holds g.mu.
func (g *Group) snapshot() []string {
	out := make([]string, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	return out
}

// Peek reads the guarded member set with no lock and no contract.
func (g *Group) Peek() int {
	return len(g.members) // want `read of "core\.Group\.members" without "core\.Group\.mu", which guards every write to it`
}

// bg spawns a goroutine under the lock: the spawned body runs on its own
// stack without it, so its read is bare.
func (g *Group) bg(sink chan<- int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		sink <- len(g.members) // want `read of "core\.Group\.members" without "core\.Group\.mu", which guards every write to it`
	}()
}

// racyReset writes size on a path that skips the guard every other write
// uses.
func (g *Group) racyReset() {
	g.size = 0 // want `write to "core\.Group\.size" without "core\.Group\.mu", which guards every other write`
}
