// Package state is a cowsafe fixture mirroring the real COW shapes:
// live Group state captured into Transfer views that alias its buffers.
package state

type Event struct {
	ObjectID string
	Data     []byte
}

type Group struct {
	objects map[string][]byte //corona:cow
	history []Event           //corona:cow
	nextSeq uint64            // unmarked: free to mutate
}

type Transfer struct {
	objects map[string][]byte //corona:cow-view
	events  []Event           //corona:cow-view
}

// --- conforming live-side code ------------------------------------------

func newGroup() *Group {
	return &Group{objects: make(map[string][]byte)}
}

func (g *Group) applyState(ev Event) {
	g.objects[ev.ObjectID] = cloneBytes(ev.Data) // fresh clone: fine
	g.nextSeq++
}

func (g *Group) applyUpdate(ev Event) {
	// Append-to-self: lands past every captured length. Fine.
	g.objects[ev.ObjectID] = append(g.objects[ev.ObjectID], ev.Data...)
	g.history = append(g.history, ev)
}

func (g *Group) reduce(idx int) {
	// Fresh backing array for the retained tail: fine.
	g.history = append([]Event(nil), g.history[idx:]...)
}

func (g *Group) reset() {
	g.objects = make(map[string][]byte) // fresh map: fine
	g.history = nil                     // nil install: fine
	delete(g.objects, "x")              // delete never writes into a buffer: fine
}

func (g *Group) capture() *Transfer {
	t := &Transfer{objects: make(map[string][]byte)}
	for id, data := range g.objects {
		t.objects[id] = data // sharing INTO a view is the point: fine
	}
	t.events = g.history[2:] // view field may alias live history: fine
	return t
}

// --- violations ----------------------------------------------------------

func (g *Group) patchInPlace(id string, b byte) {
	g.objects[id][0] = b // want `write into COW-shared buffer`
}

func (g *Group) patchViaLocal(id string, b byte) {
	buf := g.objects[id]
	buf[0] = b // want `write into COW-shared buffer`
}

func (g *Group) patchHistory(ev Event) {
	g.history[0] = ev // want `write into COW-shared buffer`
}

func (g *Group) patchRangeValue(b byte) {
	for _, data := range g.objects {
		data[0] = b // want `write into COW-shared buffer`
	}
}

func (g *Group) patchEventData(b byte) {
	for _, ev := range g.history {
		ev.Data[0] = b // want `write into COW-shared buffer`
	}
}

func (g *Group) copyOver(id string, src []byte) {
	copy(g.objects[id], src) // want `copy into COW-shared buffer`
}

func (g *Group) installShared(id string, data []byte) {
	g.objects[id] = data // want `install into COW field g\.objects must be a fresh buffer`
}

func (g *Group) reSlice(idx int) {
	g.history = g.history[idx:] // want `install into COW field g\.history must be a fresh buffer`
}

func (g *Group) escapingAppend(id string, b byte) []byte {
	return append(g.objects[id], b) // want `append to COW-shared buffer g\.objects\[id\] escapes`
}

func (t *Transfer) mutateView(b byte, src []byte) {
	t.events[0] = Event{}     // want `write into captured COW view buffer`
	t.objects["x"][0] = b     // want `write into captured COW view buffer`
	copy(t.objects["x"], src) // want `copy into captured COW view buffer`
}

func (g *Group) allowedExample(id string, data []byte) {
	//lint:allow cowsafe data is private to this group, proven by caller
	g.objects[id] = data
}

// --- checkpoint shapes (the migration driver's capture) -------------------

// Checkpoint mirrors the O(1) checkpoint the migration driver streams: a
// full captured image whose buffers alias the live group.
type Checkpoint struct {
	objects map[string][]byte //corona:cow-view
	events  []Event           //corona:cow-view
	nextSeq uint64            // plain metadata: free to mutate
}

func (g *Group) captureCheckpoint() *Checkpoint {
	cp := &Checkpoint{objects: make(map[string][]byte), nextSeq: g.nextSeq}
	for id, data := range g.objects {
		cp.objects[id] = data // sharing INTO the checkpoint is the point: fine
	}
	cp.events = g.history // full-image alias: fine
	return cp
}

// streamChunks is the migration sender: it may read and re-slice the
// captured buffers freely — only writes are forbidden.
func (cp *Checkpoint) streamChunks(send func([]byte)) {
	for _, data := range cp.objects {
		for len(data) > 0 {
			n := len(data)
			if n > 4 {
				n = 4
			}
			send(data[:n])
			data = data[n:]
		}
	}
}

func (cp *Checkpoint) redactInPlace(id string) {
	buf := cp.objects[id]
	for i := range buf {
		buf[i] = 0 // want `write into captured COW view buffer`
	}
}

func (cp *Checkpoint) normalize(src []byte) {
	copy(cp.events[0].Data, src) // want `copy into captured COW view buffer`
	cp.nextSeq++                 // unmarked metadata: fine
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
