package cowsafe_test

import (
	"testing"

	"corona/internal/analysis/analysistest"
	"corona/internal/analysis/cowsafe"
)

func TestCowsafe(t *testing.T) {
	analysistest.Run(t, "testdata", cowsafe.Analyzer)
}
