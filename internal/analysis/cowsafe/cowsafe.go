// Package cowsafe enforces the copy-on-write discipline of internal/state
// (PR 3): Capture returns O(1) views that share object buffers and the
// history tail with the live group, so the live side may never mutate
// shared memory in place.
//
// Fields are annotated in the source:
//
//   - //corona:cow marks live state that captures alias (Group.objects,
//     Group.history). Element writes into values reachable from such a
//     field are forbidden; installing a value into the field (map insert
//     or field assignment) requires a provably fresh buffer — a clone*/
//     Clone* call, make, a composite literal, nil, append-to-self (the
//     documented EventUpdate pattern: appends land past every captured
//     length), or append onto a fresh first argument. A bare re-slice
//     such as `g.history = g.history[idx:]` is rejected: it keeps the
//     shared backing array writable.
//
//   - //corona:cow-view marks the captured side (Transfer.objects,
//     Transfer.events). Inserting shared values is the whole point and is
//     allowed; element writes through the view are forbidden.
//
// Taint is tracked intra-function through locals, indexing, re-slicing,
// field access, and range statements, so `buf := g.objects[id]; buf[0]++`
// is caught as surely as the direct write. The analyzer applies to every
// package named "state".
package cowsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corona/internal/analysis"
)

// Analyzer is the cowsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "cowsafe",
	Doc:  "forbids in-place mutation of COW-shared state buffers in internal/state",
	Run:  run,
}

const (
	markCOW  = "cow"      // live state; captures alias it
	markView = "cow-view" // captured view; shares live buffers
)

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Pkgs {
		if pkg.Name != "state" {
			continue
		}
		fields := markedFields(pkg)
		if len(fields) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					w := &walker{pass: pass, pkg: pkg, fields: fields,
						local:      map[types.Object]string{},
						sanctioned: map[*ast.CallExpr]bool{}}
					w.walk(fd.Body)
				}
			}
		}
	}
	return nil
}

// markedFields maps struct field objects to their marker ("cow" or
// "cow-view"), collected from //corona:cow[-view] comments on the field
// declarations.
func markedFields(pkg *analysis.Package) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				m := fieldMarker(field)
				if m == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						out[obj] = m
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldMarker(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "corona:"+markView) {
				return markView
			}
			if strings.Contains(c.Text, "corona:"+markCOW) {
				return markCOW
			}
		}
	}
	return ""
}

// walker checks one function body.
type walker struct {
	pass   *analysis.Pass
	pkg    *analysis.Package
	fields map[types.Object]string // marked struct fields
	local  map[types.Object]string // tainted locals → marker
	// sanctioned records append calls already judged by the install rules
	// (append-to-self or fresh-base), so the escape check skips them.
	sanctioned map[*ast.CallExpr]bool
}

func (w *walker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.RangeStmt:
			if m := w.marker(n.X); m != "" {
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.pkg.Info.Defs[id]; obj != nil && !isBasic(obj) {
							w.local[obj] = m
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if m := w.marker(n.X); m != "" {
				w.pass.Reportf(n.Pos(), "in-place mutation of %s buffer %s; captured views may alias it",
					describe(m), types.ExprString(n.X))
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// assign handles writes: element writes, installs into marked fields, and
// taint propagation into locals.
func (w *walker) assign(a *ast.AssignStmt) {
	// Only pairwise assignments propagate taint / get checked; the
	// multi-return form cannot produce a tainted value here.
	n := len(a.Lhs)
	if len(a.Rhs) != n {
		return
	}
	for i := 0; i < n; i++ {
		lhs, rhs := a.Lhs[i], a.Rhs[i]
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			base := ast.Unparen(l.X)
			m := w.marker(base)
			if m == "" {
				// Untracked base; still catch writes through a tainted
				// index chain, e.g. g.objects[id][0] = b.
				if inner := w.marker(l.X); inner != "" {
					w.elementWrite(l.Pos(), inner, lhs)
				}
				continue
			}
			if isMap(w.pkg.Info, base) {
				// Map insert: an install. Views may share freely; live
				// COW state requires a fresh value.
				if m == markCOW && !w.fresh(rhs, types.ExprString(lhs)) {
					w.pass.Reportf(a.Pos(),
						"install into COW field %s must be a fresh buffer (clone, make, literal, nil, or append-to-self); %s may be shared with captured views",
						types.ExprString(base), types.ExprString(rhs))
				}
			} else {
				w.elementWrite(l.Pos(), m, lhs)
			}
		case *ast.SelectorExpr:
			if obj := w.pkg.Info.Uses[l.Sel]; obj != nil {
				if m, marked := w.fields[obj]; marked {
					if m == markCOW && !w.fresh(rhs, types.ExprString(lhs)) {
						w.pass.Reportf(a.Pos(),
							"install into COW field %s must be a fresh buffer (clone, make, literal, nil, or append-to-self); %s may be shared with captured views",
							types.ExprString(lhs), types.ExprString(rhs))
					}
					continue
				}
			}
			if m := w.marker(l.X); m != "" {
				w.elementWrite(l.Pos(), m, lhs)
			}
		case *ast.Ident:
			if obj := w.pkg.Info.Defs[l]; obj != nil || a.Tok == token.ASSIGN {
				if obj == nil {
					obj = w.pkg.Info.Uses[l]
				}
				if obj == nil {
					continue
				}
				if m := w.marker(rhs); m != "" && !isBasic(obj) {
					w.local[obj] = m
					// x = append(x, ...) on a tainted local mirrors the
					// sanctioned append-to-self field pattern.
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(w.pkg.Info, call) &&
						len(call.Args) > 0 && types.ExprString(ast.Unparen(call.Args[0])) == types.ExprString(l) {
						w.sanctioned[call] = true
					}
				} else if a.Tok == token.ASSIGN {
					delete(w.local, obj) // overwritten with untainted value
				}
			}
		case *ast.StarExpr:
			if m := w.marker(l.X); m != "" {
				w.elementWrite(l.Pos(), m, lhs)
			}
		}
	}
}

// call flags copy() into tainted destinations and appends whose result
// escapes the COW discipline.
func (w *walker) call(call *ast.CallExpr) {
	if isBuiltin(w.pkg.Info, call, "copy") && len(call.Args) == 2 {
		if m := w.marker(call.Args[0]); m != "" {
			w.pass.Reportf(call.Pos(), "copy into %s buffer %s; captured views may alias it",
				describe(m), types.ExprString(call.Args[0]))
		}
		return
	}
	if isAppend(w.pkg.Info, call) && len(call.Args) > 0 && !w.sanctioned[call] {
		first := ast.Unparen(call.Args[0])
		if m := w.marker(first); m != "" && !w.freshBase(first) {
			w.pass.Reportf(call.Pos(),
				"append to %s buffer %s escapes; install the result back into the same field or build on a fresh base",
				describe(m), types.ExprString(first))
		}
	}
}

func (w *walker) elementWrite(pos token.Pos, marker string, lhs ast.Expr) {
	w.pass.Reportf(pos, "write into %s buffer %s; captured views alias this memory",
		describe(marker), types.ExprString(lhs))
}

// marker reports whether e reaches memory shared under a marked field:
// "" (no), "cow", or "cow-view".
func (w *walker) marker(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return w.local[obj]
		}
	case *ast.SelectorExpr:
		if obj := w.pkg.Info.Uses[e.Sel]; obj != nil {
			if m, ok := w.fields[obj]; ok {
				return m
			}
		}
		return w.marker(e.X)
	case *ast.IndexExpr:
		return w.marker(e.X)
	case *ast.SliceExpr:
		return w.marker(e.X)
	case *ast.StarExpr:
		return w.marker(e.X)
	case *ast.UnaryExpr:
		return w.marker(e.X)
	}
	return ""
}

// fresh reports whether rhs provably does not share backing memory with
// any captured view when installed at lhsText.
func (w *walker) fresh(rhs ast.Expr, lhsText string) bool {
	rhs = ast.Unparen(rhs)
	switch r := rhs.(type) {
	case *ast.Ident:
		return r.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if tv, ok := w.pkg.Info.Types[r.Fun]; ok && tv.IsType() {
			// Conversion: fresh iff its operand is ([]byte(nil) etc.).
			return len(r.Args) == 1 && w.fresh(r.Args[0], lhsText)
		}
		if isAppend(w.pkg.Info, r) && len(r.Args) > 0 {
			first := ast.Unparen(r.Args[0])
			ok := types.ExprString(first) == lhsText || w.freshBase(first)
			if ok {
				w.sanctioned[r] = true
			}
			return ok
		}
		switch fun := ast.Unparen(r.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "make" || fun.Name == "new" || cloneName(fun.Name)
		case *ast.SelectorExpr:
			return cloneName(fun.Sel.Name)
		}
	}
	return false
}

// freshBase reports whether an append base is itself fresh: nil, an empty
// or literal slice, or a conversion of one.
func (w *walker) freshBase(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && w.freshBase(e.Args[0])
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "make" || cloneName(fun.Name)
		case *ast.SelectorExpr:
			return cloneName(fun.Sel.Name)
		}
	}
	return false
}

func cloneName(name string) bool {
	return strings.HasPrefix(name, "clone") || strings.HasPrefix(name, "Clone")
}

func describe(marker string) string {
	if marker == markView {
		return "captured COW view"
	}
	return "COW-shared"
}

func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

func isBasic(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Basic)
	return ok
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltin(info, call, "append")
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
