package refsafe_test

import (
	"testing"

	"corona/internal/analysis/analysistest"
	"corona/internal/analysis/refsafe"
)

func TestRefsafe(t *testing.T) {
	analysistest.Run(t, "testdata", refsafe.Analyzer)
}
