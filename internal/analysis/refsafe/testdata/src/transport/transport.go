// Package transport is a refsafe fixture stub with the same shapes as the
// real transport package: a refcounted SharedFrame and the Pump's
// conditional-transfer send entry points. Bodies are inert — refsafe
// matches these by package name, type name, and method name.
package transport

import "errors"

// ErrPumpClosed mirrors the real sentinel.
var ErrPumpClosed = errors.New("pump closed")

type SharedFrame struct {
	buf     []byte
	onFinal func()
}

func NewSharedFrame(b []byte) *SharedFrame { return &SharedFrame{buf: b} }

func NewSharedFrameFinal(b []byte, onFinal func()) *SharedFrame {
	f := NewSharedFrame(b)
	f.onFinal = onFinal
	return f
}

func (f *SharedFrame) Retain()       {}
func (f *SharedFrame) Release()      {}
func (f *SharedFrame) Bytes() []byte { return f.buf }

type Pump struct{ closed bool }

func (p *Pump) SendShared(f *SharedFrame, high bool) error { return nil }

func (p *Pump) SendSharedBatch(fs []*SharedFrame, high bool) error { return nil }

func (p *Pump) SendSharedRun(fs []*SharedFrame, high bool) (int, error) { return len(fs), nil }
