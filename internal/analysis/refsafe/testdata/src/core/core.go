// Package core is a refsafe fixture spanning two fixture packages: the
// frame and pump types come from the sibling transport fixture, so one
// golden run exercises cross-package ownership tracking. Violations carry
// // want expectations; conforming code must stay silent.
package core

import "transport"

type Session struct {
	pump *transport.Pump
}

// --- conditional transfer: SendShared ------------------------------------

// good releases on the rejection path and lets success transfer.
func (s *Session) good(b []byte) {
	f := transport.NewSharedFrame(b)
	if err := s.pump.SendShared(f, false); err != nil {
		f.Release()
	}
}

// leakOnReject returns from the rejection branch still holding the frame.
func (s *Session) leakOnReject(b []byte) {
	f := transport.NewSharedFrame(b) // want `frame "f" can leak: a path reaches function exit still holding 1 reference\(s\)`
	if err := s.pump.SendShared(f, false); err != nil {
		return
	}
}

// leakOnRejectFallthrough forgets the Release without returning: the
// merged exit still sees the kept reference.
func (s *Session) leakOnRejectFallthrough(b []byte) {
	f := transport.NewSharedFrame(b) // want `frame "f" can leak: a path reaches function exit still holding 1 reference\(s\)`
	if err := s.pump.SendShared(f, false); err != nil {
		_ = err // rejected frame dropped on the floor
	}
}

// discard throws the send error away: the rejection path can never
// release.
func (s *Session) discard(b []byte) {
	f := transport.NewSharedFrame(b)
	s.pump.SendShared(f, false) // want `SendShared error discarded: the rejection path leaks`
}

// unchecked records the error but never compares it to nil.
func (s *Session) unchecked(b []byte) error {
	f := transport.NewSharedFrame(b)
	err := s.pump.SendShared(f, false) // want `SendShared error unchecked: the rejection path leaks frame "f"`
	return err
}

// escalates reports a send whose error leaves the function unhandled.
func (s *Session) escalates(b []byte) error {
	f := transport.NewSharedFrame(b)
	return s.pump.SendShared(f, false) // want `SendShared error leaves this function unchecked: the rejection path leaks frame "f"`
}

// inlineNew loses the constructed frame whenever the pump rejects it.
func (s *Session) inlineNew(b []byte) {
	if err := s.pump.SendShared(transport.NewSharedFrame(b), false); err != nil { // want `frame constructed inline is lost if SendShared rejects it`
		return
	}
}

// --- refcount discipline -------------------------------------------------

// useAfterRelease reads the buffer after dropping the last reference.
func useAfterRelease(b []byte) []byte {
	f := transport.NewSharedFrame(b)
	f.Release()
	return f.Bytes() // want `use of "f" after release`
}

// doubleRelease drops the same reference twice.
func doubleRelease(b []byte) {
	f := transport.NewSharedFrame(b)
	f.Release()
	f.Release() // want `use of "f" after release`
}

// releaseAfterTransfer releases a frame the pump now owns.
func (s *Session) releaseAfterTransfer(b []byte) {
	f := transport.NewSharedFrame(b)
	if err := s.pump.SendShared(f, false); err != nil {
		f.Release()
		return
	}
	f.Release() // want `release of "f" past its last owned reference`
}

// retainLeak retains without a matching release.
func retainLeak(b []byte) *transport.SharedFrame {
	f := transport.NewSharedFrame(b) // want `frame "f" can leak: a path reaches function exit still holding 2 reference\(s\)`
	f.Retain()
	g := transport.NewSharedFrame(b)
	return g // returning g hands its reference to the caller: fine
}

// deferRelease balances the constructor reference with a deferred drop.
func deferRelease(b []byte) int {
	f := transport.NewSharedFrame(b)
	defer f.Release()
	return len(f.Bytes())
}

// conditionalRelease only drops the frame on one branch.
func conditionalRelease(b []byte, drop bool) {
	f := transport.NewSharedFrame(b) // want `frame "f" can leak: a path reaches function exit still holding 1 reference\(s\)`
	if drop {
		f.Release()
	}
}

// --- annotated parameter contracts ---------------------------------------

// sendOwned consumes f on every path, releasing when the pump rejects.
//
//corona:owns f
func (s *Session) sendOwned(f *transport.SharedFrame, high bool) {
	if err := s.pump.SendShared(f, high); err != nil {
		f.Release()
	}
}

// sendLeaky claims ownership but never settles the rejection path.
//
//corona:owns f
func (s *Session) sendLeaky(f *transport.SharedFrame) {
	err := s.pump.SendShared(f, false) // want `SendShared error unchecked: the rejection path leaks frame "f"`
	_ = err
}

// peek borrows: reading is fine, releasing is not.
//
//corona:borrows f
func peek(f *transport.SharedFrame) int {
	return len(f.Bytes())
}

// stealer borrows but drops a reference it does not hold.
//
//corona:borrows f
func stealer(f *transport.SharedFrame) {
	f.Release() // want `"f" releases a reference it does not own`
}

// bareRelease releases an unannotated parameter: the contract is
// undeclared, so the reference is not this function's to drop.
func bareRelease(f *transport.SharedFrame) {
	f.Release() // want `"f" releases a reference it does not own`
}

// retainBalanced borrows, takes its own reference, and drops it.
//
//corona:borrows f
func (s *Session) retainBalanced(f *transport.SharedFrame) {
	f.Retain()
	if err := s.pump.SendShared(f, false); err != nil {
		f.Release()
	}
}

// badAnnotation names a parameter that does not exist.
//
//corona:owns g
func badAnnotation(f *transport.SharedFrame) { // want `corona:owns names unknown parameter "g"`
	f.Retain()
	f.Release()
}

// wrongType annotates a parameter that is not a frame.
//
//corona:owns n
func wrongType(n int) { // want `corona:owns parameter "n" is not a \*transport\.SharedFrame`
	_ = n
}

// --- transfer to annotated callees ---------------------------------------

// fanLoop is the fanout shape: one constructor reference, one Retain per
// receiver balanced by the owning callee, final Release.
func (s *Session) fanLoop(subs []*Session, b []byte) {
	frame := transport.NewSharedFrame(b)
	for _, sub := range subs {
		frame.Retain()
		sub.sendOwned(frame, false)
	}
	frame.Release()
}

// perIterLeak creates a frame every iteration and settles it on neither
// path.
func (s *Session) perIterLeak(subs []*Session, b []byte) {
	for _, sub := range subs {
		f := transport.NewSharedFrame(b) // want `frame "f" can leak: a loop iteration ends still holding 1 reference\(s\)`
		if err := sub.pump.SendShared(f, false); err != nil {
			_ = err
		}
	}
}

// perIterClean mirrors the real transfer-chunk loop: created, sent,
// released on rejection, every iteration.
func (s *Session) perIterClean(bs [][]byte) {
	for _, b := range bs {
		f := transport.NewSharedFrame(b)
		if err := s.pump.SendShared(f, false); err != nil {
			f.Release()
			return
		}
	}
}

// --- batch admission ------------------------------------------------------

// flushGood releases every frame when the all-or-nothing enqueue rejects.
func (s *Session) flushGood(fs []*transport.SharedFrame) {
	if err := s.pump.SendSharedBatch(fs, false); err != nil {
		for _, f := range fs {
			f.Release()
		}
	}
}

// flushBad bails out of the rejection branch without releasing anything.
func (s *Session) flushBad(fs []*transport.SharedFrame) {
	if err := s.pump.SendSharedBatch(fs, true); err != nil { // want `SendSharedBatch rejection path must release the unsent frames of "fs"`
		return
	}
}

// runGood releases the unadmitted suffix after prefix admission.
func (s *Session) runGood(fs []*transport.SharedFrame) {
	admitted, err := s.pump.SendSharedRun(fs, false)
	if err != nil {
		for k := admitted; k < len(fs); k++ {
			fs[k].Release()
		}
	}
}

// runDiscard ignores prefix admission entirely.
func (s *Session) runDiscard(fs []*transport.SharedFrame) {
	s.pump.SendSharedRun(fs, false) // want `SendSharedRun error discarded: the rejection path leaks`
}

// batchUnchecked stores the error and walks away.
func (s *Session) batchUnchecked(fs []*transport.SharedFrame) error {
	err := s.pump.SendSharedBatch(fs, false) // want `SendSharedBatch error unchecked: rejected frames leak`
	return err
}

// delegated hands the batch to an owning callee on rejection.
func (s *Session) delegated(fs []*transport.SharedFrame) {
	if err := s.pump.SendSharedBatch(fs, false); err != nil {
		releaseAll(fs)
	}
}

// releaseAll consumes every frame of the batch.
//
//corona:owns fs
func releaseAll(fs []*transport.SharedFrame) {
	for _, f := range fs {
		f.Release()
	}
}

// --- escapes stay silent --------------------------------------------------

type holder struct {
	f *transport.SharedFrame
}

// escapes stores the frame: ownership follows the holder, not this
// function, so refsafe stops tracking without complaint.
func escapes(b []byte) *holder {
	f := transport.NewSharedFrame(b)
	return &holder{f: f}
}

// escapesField assigns into a field.
func escapesField(h *holder, b []byte) {
	f := transport.NewSharedFrame(b)
	h.f = f
}

// escapesClosure captures the frame in a goroutine.
func escapesClosure(b []byte, sink func(*transport.SharedFrame)) {
	f := transport.NewSharedFrame(b)
	go func() { sink(f) }()
}

// suppressed demonstrates a reviewed exception: the leak diagnostic
// anchors at the constructor, so the allow covers that line.
func suppressed(b []byte) {
	//lint:allow refsafe fixture: reviewed leak, reclaimed by process exit
	f := transport.NewSharedFrame(b)
	f.Retain()
}
