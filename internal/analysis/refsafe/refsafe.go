// Package refsafe checks the pooled SharedFrame ownership protocol that
// the fanout and batching PRs spread across core, cluster, and transport.
//
// The protocol (documented on transport.SharedFrame): NewSharedFrame
// returns a frame holding one reference; Pump.SendShared transfers one
// reference on success and none on failure, so the caller must Release on
// the rejection path; SendSharedBatch is all-or-nothing and
// SendSharedRun admits a prefix, so both leave the unsent suffix's
// references with the caller. A missed Release leaks a pooled buffer; an
// extra one frees a frame another pump is still writing.
//
// The checker is annotation-driven. A function taking a frame parameter
// declares its side of the contract in its doc comment:
//
//	//corona:owns f       – the callee consumes one reference of f on
//	                        every path; callers transfer ownership.
//	//corona:borrows f    – the callee uses f but keeps no reference;
//	                        callers retain ownership.
//
// Within a checked function body (packages core, cluster, transport) the
// analyzer tracks each frame-typed local bound to a NewSharedFrame call
// and each frame parameter, simulating Retain/Release/transfer along
// every branch:
//
//   - a path that reaches an exit still holding references leaks;
//   - Release past the last owned reference, or any use of a frame the
//     function released to zero, is an error;
//   - the error result of SendShared must be checked, and the rejection
//     branch must keep or release the frame — discarding the error
//     leaks the frame whenever the pump is over quota;
//   - the error result of SendSharedBatch/SendSharedRun must be checked
//     and the rejection branch must release elements of the batch slice
//     (indexed, by range, or by delegating the slice to a //corona:owns
//     callee);
//   - releasing a parameter not annotated //corona:owns gives away a
//     reference the function does not hold.
//
// Tracking is deliberately partial: frames stored into fields, slices,
// maps, closures, or passed to unannotated callees escape and are not
// followed (the annotation is what turns checking on), and a frame whose
// reference count differs between merged branches or across a loop
// iteration stops being tracked rather than guessed at.
package refsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corona/internal/analysis"
)

// Analyzer is the refsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "refsafe",
	Doc:  "checks SharedFrame reference-count discipline via //corona:owns and //corona:borrows annotations",
	Run:  run,
}

const (
	modeNone = iota
	modeOwns
	modeBorrows
)

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		anns:     map[*types.Func]map[int]int{},
		reported: map[token.Pos]bool{},
	}
	c.collectAnnotations()
	for _, pkg := range pass.Pkgs {
		switch pkg.Name {
		case "core", "cluster", "transport":
		default:
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(pkg, fd)
				}
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// anns maps an annotated function to parameter index → mode.
	anns map[*types.Func]map[int]int
	// reported dedupes per-frame diagnostics that several paths reach.
	reported map[token.Pos]bool
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// ---- annotations --------------------------------------------------------

// collectAnnotations parses //corona:owns and //corona:borrows doc lines
// on every function of the program, validating parameter names and types.
func (c *checker) collectAnnotations() {
	for _, pkg := range c.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, line := range fd.Doc.List {
					c.parseAnnotation(pkg, fd, line)
				}
			}
		}
	}
}

func (c *checker) parseAnnotation(pkg *analysis.Package, fd *ast.FuncDecl, line *ast.Comment) {
	text := strings.TrimPrefix(line.Text, "//")
	var mode int
	var rest string
	switch {
	case strings.HasPrefix(text, "corona:owns"):
		mode, rest = modeOwns, text[len("corona:owns"):]
	case strings.HasPrefix(text, "corona:borrows"):
		mode, rest = modeBorrows, text[len("corona:borrows"):]
	default:
		return
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	word := "owns"
	if mode == modeBorrows {
		word = "borrows"
	}
	names := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(names) == 0 {
		c.pass.Reportf(fd.Name.Pos(), "corona:%s names no parameter", word)
		return
	}
	for _, name := range names {
		idx, t := paramByName(fd, pkg.Info, name)
		if idx < 0 {
			c.pass.Reportf(fd.Name.Pos(), "corona:%s names unknown parameter %q", word, name)
			continue
		}
		if !isFrame(t) && !isFrameSlice(t) {
			c.pass.Reportf(fd.Name.Pos(), "corona:%s parameter %q is not a *transport.SharedFrame or a slice of them", word, name)
			continue
		}
		m := c.anns[fn]
		if m == nil {
			m = map[int]int{}
			c.anns[fn] = m
		}
		if prev, ok := m[idx]; ok && prev != mode {
			c.pass.Reportf(fd.Name.Pos(), "parameter %q annotated both corona:owns and corona:borrows", name)
			continue
		}
		m[idx] = mode
	}
}

func paramByName(fd *ast.FuncDecl, info *types.Info, name string) (int, types.Type) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				if obj := info.Defs[id]; obj != nil {
					return idx, obj.Type()
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1, nil
}

// ---- per-function state -------------------------------------------------

const (
	kindCreated  = iota // bound to a NewSharedFrame result in this function
	kindOwned           // //corona:owns parameter
	kindBorrowed        // //corona:borrows or unannotated parameter
)

// frameState is the abstract state of one tracked frame variable.
type frameState struct {
	name     string
	origin   token.Pos
	kind     int
	refs     int // references this function owns
	deferred int // releases registered via defer
	released bool
	escaped  bool
	pending  *pendingSend
}

func (s *frameState) clone() *frameState {
	cp := *s
	if s.pending != nil {
		p := *s.pending
		cp.pending = &p
	}
	return &cp
}

// pendingSend is an unresolved SendShared whose transfer depends on the
// recorded error variable: nil error → one reference moved to the pump.
type pendingSend struct {
	errObj types.Object
	pos    token.Pos
}

// pendingBatch is an unresolved SendSharedBatch/SendSharedRun: once the
// error variable is checked, the rejection branch must release elements
// of the slice.
type pendingBatch struct {
	errObj   types.Object
	sliceObj types.Object
	pos      token.Pos
	callee   string
}

type env struct {
	frames  map[types.Object]*frameState
	batches []*pendingBatch
}

func newEnv() *env { return &env{frames: map[types.Object]*frameState{}} }

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.frames {
		c.frames[k] = v.clone()
	}
	c.batches = append(c.batches, e.batches...)
	return c
}

// merge folds a branch env back into the continuation. A frame tracked on
// only one side, or with diverging defer/pending bookkeeping, stops being
// tracked; diverging reference counts keep the higher one, so a branch
// that forgets a Release still reports a leak at the exit.
func (e *env) merge(b *env) {
	for k, s := range e.frames {
		o, ok := b.frames[k]
		if !ok {
			delete(e.frames, k)
			continue
		}
		if o.escaped || s.escaped {
			s.escaped = true
			continue
		}
		if o.deferred != s.deferred || (o.pending == nil) != (s.pending == nil) {
			delete(e.frames, k)
			continue
		}
		if o.pending != nil && s.pending != nil && o.pending.errObj != s.pending.errObj {
			delete(e.frames, k)
			continue
		}
		if o.refs > s.refs {
			s.refs = o.refs
		}
		if o.released != s.released {
			s.released = false // dead on one path only: no use-after guesses
		}
	}
	// Batch pendings: keep the union; resolution removes from both sides.
	seen := map[*pendingBatch]bool{}
	for _, p := range e.batches {
		seen[p] = true
	}
	for _, p := range b.batches {
		if !seen[p] {
			e.batches = append(e.batches, p)
		}
	}
}

func (e *env) dropBatch(p *pendingBatch) {
	for i, q := range e.batches {
		if q == p {
			e.batches = append(e.batches[:i], e.batches[i+1:]...)
			return
		}
	}
}

// ---- the walk -----------------------------------------------------------

func (c *checker) checkFunc(pkg *analysis.Package, fd *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	env := newEnv()
	modes := c.anns[fn]
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if obj := pkg.Info.Defs[id]; obj != nil && isFrame(obj.Type()) {
				st := &frameState{name: id.Name, origin: id.Pos(), kind: kindBorrowed}
				if modes[idx] == modeOwns {
					st.kind, st.refs = kindOwned, 1
				}
				env.frames[obj] = st
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	if !c.walkStmts(pkg, fd.Body.List, env) {
		c.exitCheck(env, fd.Body.Rbrace)
	}
}

// exitCheck fires the leak diagnostics for one path reaching a function
// exit.
func (c *checker) exitCheck(e *env, at token.Pos) {
	for _, st := range e.frames {
		if st.escaped || st.released {
			continue
		}
		if st.pending != nil {
			c.reportOnce(st.pending.pos, "SendShared error unchecked: the rejection path leaks frame %q", st.name)
			continue
		}
		if n := st.refs - st.deferred; n > 0 {
			c.reportOnce(st.origin, "frame %q can leak: a path reaches function exit still holding %d reference(s)", st.name, n)
		} else if n < 0 {
			c.reportOnce(st.origin, "deferred releases exceed the references %q owns", st.name)
		}
	}
	for _, p := range e.batches {
		c.reportOnce(p.pos, "%s error unchecked: rejected frames leak", p.callee)
	}
	_ = at
}

// walkStmts walks one statement list; true means the path terminated
// (return, panic, break/continue).
func (c *checker) walkStmts(pkg *analysis.Package, stmts []ast.Stmt, e *env) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if c.intrinsicStmt(pkg, e, s.X) {
				continue
			}
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					c.evalExpr(pkg, e, call)
					return true
				}
			}
			c.evalExpr(pkg, e, s.X)
		case *ast.AssignStmt:
			c.walkAssign(pkg, e, s)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						if i < len(vs.Values) {
							c.bindValue(pkg, e, id, vs.Values[i], true)
						}
					}
				}
			}
		case *ast.DeferStmt:
			c.walkDefer(pkg, e, s.Call)
		case *ast.GoStmt:
			for _, a := range s.Call.Args {
				c.evalExpr(pkg, e, a)
			}
			c.escapeCaptured(pkg, e, s.Call.Fun)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if obj := identObj(pkg, r); obj != nil {
					if st, ok := e.frames[obj]; ok {
						st.escaped = true // ownership moves to the caller
						continue
					}
				}
				c.evalExpr(pkg, e, r)
			}
			c.exitCheck(e, s.Pos())
			return true
		case *ast.BranchStmt:
			return true // break/continue/goto: path leaves this list
		case *ast.BlockStmt:
			if c.walkStmts(pkg, s.List, e) {
				return true
			}
		case *ast.IfStmt:
			if c.walkIf(pkg, e, s) {
				return true
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.walkStmts(pkg, []ast.Stmt{s.Init}, e)
			}
			if s.Cond != nil {
				c.evalExpr(pkg, e, s.Cond)
			}
			loop := e.clone()
			c.walkStmts(pkg, s.Body.List, loop)
			if s.Post != nil {
				c.walkStmts(pkg, []ast.Stmt{s.Post}, loop)
			}
			c.loopReconcile(e, loop)
		case *ast.RangeStmt:
			c.evalExpr(pkg, e, s.X)
			loop := e.clone()
			c.walkStmts(pkg, s.Body.List, loop)
			c.loopReconcile(e, loop)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			c.walkBranches(pkg, e, s)
		case *ast.LabeledStmt:
			if c.walkStmts(pkg, []ast.Stmt{s.Stmt}, e) {
				return true
			}
		default:
			c.evalExpr(pkg, e, s)
		}
	}
	return false
}

// walkIf handles the branch split, including conditional-transfer
// resolution when the condition checks a pending send's error variable.
func (c *checker) walkIf(pkg *analysis.Package, e *env, s *ast.IfStmt) bool {
	if s.Init != nil {
		c.walkStmts(pkg, []ast.Stmt{s.Init}, e)
	}
	errObj, isNeq := nilCheck(pkg, s.Cond)
	if errObj == nil {
		c.evalExpr(pkg, e, s.Cond)
	}

	envThen, envElse := e.clone(), e.clone()
	if errObj != nil {
		errEnv, okEnv := envThen, envElse // err != nil: then is the rejection branch
		errNode := ast.Node(s.Body)
		if !isNeq {
			errEnv, okEnv = envElse, envThen
			errNode = s.Else // may be nil: no rejection handling at all
		}
		for _, st := range okEnv.frames {
			if st.pending != nil && st.pending.errObj == errObj {
				st.pending = nil
				if st.refs > 0 {
					st.refs-- // transferred to the pump
				} else {
					st.escaped = true
				}
			}
		}
		for _, st := range errEnv.frames {
			if st.pending != nil && st.pending.errObj == errObj {
				st.pending = nil // rejection: the caller still owns its refs
			}
		}
		for _, p := range append([]*pendingBatch(nil), e.batches...) {
			if p.errObj != errObj {
				continue
			}
			if errNode == nil || !c.releasesSlice(pkg, errNode, p.sliceObj) {
				c.reportOnce(p.pos, "%s rejection path must release the unsent frames of %q", p.callee, objName(p.sliceObj))
			}
			envThen.dropBatch(p)
			envElse.dropBatch(p)
		}
	}

	tThen := c.walkStmts(pkg, s.Body.List, envThen)
	tElse := false
	if s.Else != nil {
		tElse = c.walkStmts(pkg, []ast.Stmt{s.Else}, envElse)
	}
	switch {
	case tThen && tElse:
		return true
	case tThen:
		*e = *envElse
	case tElse:
		*e = *envThen
	default:
		*e = *envThen
		e.merge(envElse)
	}
	return false
}

// walkBranches handles switch/select: each clause on a cloned env, all
// merged into the continuation.
func (c *checker) walkBranches(pkg *analysis.Package, e *env, s ast.Stmt) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmts(pkg, []ast.Stmt{s.Init}, e)
		}
		if s.Tag != nil {
			c.evalExpr(pkg, e, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmts(pkg, []ast.Stmt{s.Init}, e)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var outs []*env
	for _, cl := range clauses {
		be := e.clone()
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
		case *ast.CommClause:
			body = cl.Body
		}
		if !c.walkStmts(pkg, body, be) {
			outs = append(outs, be)
		}
	}
	if len(outs) == 0 {
		return // keep entry env: zero-clause or all-terminating switches
	}
	*e = *outs[0]
	for _, o := range outs[1:] {
		e.merge(o)
	}
}

// loopReconcile folds one symbolic loop iteration back into the
// continuation: frames whose state survived the iteration unchanged stay
// tracked, everything else is dropped; frames and sends created inside
// the iteration must be settled by its end.
func (c *checker) loopReconcile(e *env, loop *env) {
	for k, st := range e.frames {
		o, ok := loop.frames[k]
		if !ok || o.refs != st.refs || o.released != st.released || o.escaped != st.escaped ||
			o.deferred != st.deferred || (o.pending == nil) != (st.pending == nil) {
			delete(e.frames, k)
		}
	}
	entry := map[types.Object]bool{}
	for k := range e.frames {
		entry[k] = true
	}
	for k, st := range loop.frames {
		if entry[k] || st.escaped || st.released {
			continue
		}
		if st.pending != nil {
			c.reportOnce(st.pending.pos, "SendShared error unchecked: the rejection path leaks frame %q", st.name)
			continue
		}
		if n := st.refs - st.deferred; n > 0 {
			c.reportOnce(st.origin, "frame %q can leak: a loop iteration ends still holding %d reference(s)", st.name, n)
		}
	}
	had := map[*pendingBatch]bool{}
	for _, p := range e.batches {
		had[p] = true
	}
	for _, p := range loop.batches {
		if !had[p] {
			c.reportOnce(p.pos, "%s error unchecked: rejected frames leak", p.callee)
		}
	}
}

// ---- statements ---------------------------------------------------------

// walkAssign processes one assignment: intrinsic send results, new frame
// bindings, aliasing, and stores.
func (c *checker) walkAssign(pkg *analysis.Package, e *env, s *ast.AssignStmt) {
	// err := pump.SendShared(f, high) / n, err := pump.SendSharedRun(fs, high)
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if name, ok := c.intrinsicSend(pkg, call); ok {
				var errExpr ast.Expr
				switch name {
				case "SendShared", "SendSharedBatch":
					if len(s.Lhs) == 1 {
						errExpr = s.Lhs[0]
					}
				case "SendSharedRun":
					if len(s.Lhs) == 2 {
						errExpr = s.Lhs[1]
					}
				}
				c.recordSend(pkg, e, call, name, identObj(pkg, errExpr))
				return
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				c.bindValue(pkg, e, id, s.Rhs[i], s.Tok == token.DEFINE)
				continue
			}
			// Store into a field/index/deref: a tracked rhs escapes.
			c.evalExpr(pkg, e, lhs)
			if obj := identObj(pkg, s.Rhs[i]); obj != nil {
				if st, ok := e.frames[obj]; ok {
					c.useCheck(pkg, st, s.Rhs[i].Pos())
					st.escaped = true
					continue
				}
			}
			c.evalExpr(pkg, e, s.Rhs[i])
		}
		return
	}
	for _, r := range s.Rhs {
		c.evalExpr(pkg, e, r)
	}
}

// bindValue binds one identifier to a value: a NewSharedFrame result
// starts tracking, anything else ends it.
func (c *checker) bindValue(pkg *analysis.Package, e *env, id *ast.Ident, rhs ast.Expr, define bool) {
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isNewFrame(pkg, call) {
		for _, a := range call.Args {
			c.evalExpr(pkg, e, a)
		}
		if obj != nil && isFrame(obj.Type()) {
			if old, ok := e.frames[obj]; ok && !old.escaped && !old.released && old.refs > 0 {
				c.reportOnce(old.origin, "frame %q can leak: a path reaches function exit still holding %d reference(s)", old.name, old.refs)
			}
			e.frames[obj] = &frameState{name: id.Name, origin: call.Pos(), kind: kindCreated, refs: 1}
		}
		return
	}
	// Aliasing a tracked frame forks ownership bookkeeping: stop tracking.
	if src := identObj(pkg, rhs); src != nil {
		if st, ok := e.frames[src]; ok {
			c.useCheck(pkg, st, rhs.Pos())
			st.escaped = true
		}
	} else {
		c.evalExpr(pkg, e, rhs)
	}
	if obj != nil {
		delete(e.frames, obj) // rebound to an untracked value
	}
	_ = define
}

// walkDefer handles defer f.Release() (counted at every exit) and escapes
// frames captured by deferred closures.
func (c *checker) walkDefer(pkg *analysis.Package, e *env, call *ast.CallExpr) {
	if obj, name := c.frameMethod(pkg, call); obj != nil && name == "Release" {
		if st, ok := e.frames[obj]; ok {
			st.deferred++
			return
		}
	}
	for _, a := range call.Args {
		c.evalExpr(pkg, e, a)
	}
	c.escapeCaptured(pkg, e, call.Fun)
}

// ---- expressions --------------------------------------------------------

// intrinsicStmt handles an intrinsic send in statement position: its
// error result is discarded, so the rejection path leaks by construction.
func (c *checker) intrinsicStmt(pkg *analysis.Package, e *env, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := c.intrinsicSend(pkg, call)
	if !ok {
		return false
	}
	c.pass.Reportf(call.Pos(), "%s error discarded: the rejection path leaks", name)
	c.recordSend(pkg, e, call, name, nil)
	return true
}

// recordSend registers a pending conditional transfer for an intrinsic
// pump send; a nil errObj means the error was discarded (already
// reported), so the frame just stops being tracked.
func (c *checker) recordSend(pkg *analysis.Package, e *env, call *ast.CallExpr, name string, errObj types.Object) {
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	for _, a := range call.Args[1:] {
		c.evalExpr(pkg, e, a)
	}
	switch name {
	case "SendShared":
		if inner, ok := arg.(*ast.CallExpr); ok && c.isNewFrame(pkg, inner) {
			c.pass.Reportf(inner.Pos(), "frame constructed inline is lost if %s rejects it", name)
			return
		}
		obj := identObj(pkg, arg)
		if obj == nil {
			c.evalExpr(pkg, e, arg)
			return
		}
		st, ok := e.frames[obj]
		if !ok {
			return
		}
		c.useCheck(pkg, st, arg.Pos())
		if errObj == nil {
			st.escaped = true // error discarded: reported at the call
			return
		}
		st.pending = &pendingSend{errObj: errObj, pos: call.Pos()}
	case "SendSharedBatch", "SendSharedRun":
		obj := identObj(pkg, arg)
		if obj == nil || errObj == nil {
			return
		}
		e.batches = append(e.batches, &pendingBatch{
			errObj: errObj, sliceObj: obj, pos: call.Pos(), callee: name,
		})
	}
}

// evalExpr walks an expression for frame uses: transfers to annotated
// callees, escapes, Retain/Release, use-after-release.
func (c *checker) evalExpr(pkg *analysis.Package, e *env, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.escapeCaptured(pkg, e, n)
			return false
		case *ast.CompositeLit:
			// A frame placed in a literal (struct, slice, map) follows the
			// container from here on.
			c.escapeCaptured(pkg, e, n)
			return false
		case *ast.SendStmt:
			c.escapeCaptured(pkg, e, n.Value)
			c.evalExpr(pkg, e, n.Chan)
			return false
		case *ast.CallExpr:
			if obj, name := c.frameMethod(pkg, n); obj != nil {
				if st, ok := e.frames[obj]; ok {
					switch name {
					case "Retain":
						c.useCheck(pkg, st, n.Pos())
						st.refs++
					case "Release":
						c.releaseCheck(st, n.Pos())
					default:
						c.useCheck(pkg, st, n.Pos())
					}
					return false
				}
			}
			if name, ok := c.intrinsicSend(pkg, n); ok {
				// Reached outside statement/assign position (e.g.
				// `return p.SendShared(f, high)`): the rejection path has
				// no handler in this function.
				if obj := identObj(pkg, firstArg(n)); obj != nil {
					if st, ok := e.frames[obj]; ok {
						c.useCheck(pkg, st, n.Pos())
						c.pass.Reportf(n.Pos(), "%s error leaves this function unchecked: the rejection path leaks frame %q", name, st.name)
						st.escaped = true
						return false
					}
				}
				return true
			}
			c.callArgs(pkg, e, n)
			return false
		case *ast.Ident:
			if obj := pkg.Info.Uses[n]; obj != nil {
				if st, ok := e.frames[obj]; ok {
					c.useCheck(pkg, st, n.Pos())
				}
			}
		}
		return true
	})
}

// callArgs applies annotated transfer semantics to a call's frame
// arguments: owns consumes, borrows keeps, anything else escapes.
func (c *checker) callArgs(pkg *analysis.Package, e *env, call *ast.CallExpr) {
	modes := c.calleeModes(pkg, call)
	_, isAppend := builtinName(pkg, call.Fun)
	for i, a := range call.Args {
		obj := identObj(pkg, a)
		if obj == nil {
			c.evalExpr(pkg, e, a)
			continue
		}
		st, ok := e.frames[obj]
		if !ok {
			continue
		}
		c.useCheck(pkg, st, a.Pos())
		switch {
		case isAppend:
			st.escaped = true // joined a slice: tracked no further
		case modes[i] == modeOwns:
			if st.refs > 0 {
				st.refs--
			} else {
				st.escaped = true
			}
			if st.refs == 0 && st.kind == kindCreated && st.deferred == 0 {
				st.released = true // consumed: the last owned ref is gone
			}
		case modes[i] == modeBorrows:
			// Callee keeps nothing: state unchanged.
		default:
			st.escaped = true // unannotated callee: contract unknown
		}
	}
	c.evalExpr(pkg, e, call.Fun)
}

func (c *checker) releaseCheck(st *frameState, pos token.Pos) {
	if st.released {
		c.reportOnce(pos, "use of %q after release", st.name)
		st.escaped = true
		return
	}
	if st.refs == 0 {
		if st.kind == kindBorrowed {
			c.reportOnce(pos, "%q releases a reference it does not own (parameter lacks //corona:owns)", st.name)
		} else {
			c.reportOnce(pos, "release of %q past its last owned reference", st.name)
		}
		st.escaped = true
		return
	}
	st.refs--
	if st.refs == 0 && st.kind != kindBorrowed && st.deferred == 0 {
		st.released = true
	}
}

func (c *checker) useCheck(pkg *analysis.Package, st *frameState, pos token.Pos) {
	if st.released {
		c.reportOnce(pos, "use of %q after release", st.name)
		st.escaped = true
	}
	_ = pkg
}

// escapeCaptured marks every tracked frame referenced inside fn (a
// closure or deferred/spawned callee expression) as escaped.
func (c *checker) escapeCaptured(pkg *analysis.Package, e *env, fn ast.Node) {
	if fn == nil {
		return
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if st, ok := e.frames[obj]; ok {
					st.escaped = true
				}
			}
		}
		return true
	})
}

// releasesSlice reports whether the rejection-branch subtree releases
// elements of the batch slice: fs[i].Release(), a range over fs whose
// body releases, or delegating fs to a //corona:owns callee.
func (c *checker) releasesSlice(pkg *analysis.Package, node ast.Node, sliceObj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr); ok {
					if identObj(pkg, ix.X) == sliceObj {
						found = true
						return false
					}
				}
			}
			modes := c.calleeModes(pkg, n)
			for i, a := range n.Args {
				if identObj(pkg, a) == sliceObj && modes[i] == modeOwns {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if identObj(pkg, n.X) != sliceObj {
				return true
			}
			v, _ := ast.Unparen(n.Value).(*ast.Ident)
			if v == nil {
				return true
			}
			vobj := pkg.Info.Defs[v]
			ast.Inspect(n.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
					if identObj(pkg, sel.X) == vobj && vobj != nil {
						found = true
						return false
					}
				}
				return true
			})
		}
		return true
	})
	return found
}

// ---- classification helpers ---------------------------------------------

// calleeModes resolves a call's statically-known callee to its annotated
// parameter modes (nil when unannotated or unresolved).
func (c *checker) calleeModes(pkg *analysis.Package, call *ast.CallExpr) map[int]int {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return c.anns[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return c.anns[fn]
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return c.anns[fn]
		}
	}
	return nil
}

// frameMethod matches a method call on a tracked-typed receiver
// identifier, returning the receiver object and method name.
func (c *checker) frameMethod(pkg *analysis.Package, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj := identObj(pkg, sel.X)
	if obj == nil || !isFrame(obj.Type()) {
		return nil, ""
	}
	return obj, sel.Sel.Name
}

// intrinsicSend matches Pump.SendShared / SendSharedBatch / SendSharedRun.
func (c *checker) intrinsicSend(pkg *analysis.Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "SendShared", "SendSharedBatch", "SendSharedRun":
	default:
		return "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Name() != "Pump" || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "transport" {
		return "", false
	}
	return sel.Sel.Name, true
}

// isNewFrame matches transport.NewSharedFrame / NewSharedFrameFinal.
func (c *checker) isNewFrame(pkg *analysis.Package, call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "transport" {
		return false
	}
	return fn.Name() == "NewSharedFrame" || fn.Name() == "NewSharedFrameFinal"
}

func isFrame(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "SharedFrame" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "transport"
}

func isFrameSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFrame(s.Elem())
}

// nilCheck matches `x != nil` / `x == nil`, returning x's object.
func nilCheck(pkg *analysis.Package, cond ast.Expr) (types.Object, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNil(pkg, y) {
		if obj := identObj(pkg, x); obj != nil {
			return obj, b.Op == token.NEQ
		}
	}
	if isNil(pkg, x) {
		if obj := identObj(pkg, y); obj != nil {
			return obj, b.Op == token.NEQ
		}
	}
	return nil, false
}

func isNil(pkg *analysis.Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pkg.Info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

func identObj(pkg *analysis.Package, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

func objName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	return obj.Name()
}

func builtinName(pkg *analysis.Package, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
		return b.Name(), b.Name() == "append"
	}
	return "", false
}

func firstArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}
