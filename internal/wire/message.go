package wire

import (
	"errors"
	"fmt"
)

// Kind identifies a message type on the wire. Kinds below 64 are
// client↔server; kinds 64 and above are server↔server (replicated service).
type Kind uint8

// Client↔server message kinds.
const (
	KindHello Kind = iota + 1
	KindHelloAck
	KindCreateGroup
	KindCreateGroupAck
	KindDeleteGroup
	KindDeleteGroupAck
	KindJoin
	KindJoinAck
	KindLeave
	KindLeaveAck
	KindGetMembership
	KindMembershipInfo
	KindMembershipNotify
	KindBcast
	KindBcastAck
	KindDeliver
	KindLockAcquire
	KindLockRelease
	KindLockReply
	KindReduceLog
	KindReduceLogAck
	KindListGroups
	KindGroupList
	KindPing
	KindPong
	KindError
	KindTransferChunk
	KindTransferDone
	KindDeliverBatch
)

// Server↔server message kinds.
const (
	KindSHello Kind = iota + 64
	KindSHelloAck
	KindSForward
	KindSDistribute
	KindSInterest
	KindSMemberUpdate
	KindSHeartbeat
	KindSServerList
	KindSElect
	KindSElectReply
	KindSStateRequest
	KindSStateResponse
	KindSGroupOp
	KindSGroupOpAck
	KindSSeqQuery
	KindSSeqReport
	KindSDivergence
	KindSGroupsQuery
	KindSGroupsReport
	KindSMigrate
	KindSMigrateOffer
	KindSMigrateChunk
	KindSMigrateCutover
	KindSMigrateResult
	KindSMigrated
)

var kindNames = map[Kind]string{
	KindHello:            "Hello",
	KindHelloAck:         "HelloAck",
	KindCreateGroup:      "CreateGroup",
	KindCreateGroupAck:   "CreateGroupAck",
	KindDeleteGroup:      "DeleteGroup",
	KindDeleteGroupAck:   "DeleteGroupAck",
	KindJoin:             "Join",
	KindJoinAck:          "JoinAck",
	KindLeave:            "Leave",
	KindLeaveAck:         "LeaveAck",
	KindGetMembership:    "GetMembership",
	KindMembershipInfo:   "MembershipInfo",
	KindMembershipNotify: "MembershipNotify",
	KindBcast:            "Bcast",
	KindBcastAck:         "BcastAck",
	KindDeliver:          "Deliver",
	KindLockAcquire:      "LockAcquire",
	KindLockRelease:      "LockRelease",
	KindLockReply:        "LockReply",
	KindReduceLog:        "ReduceLog",
	KindReduceLogAck:     "ReduceLogAck",
	KindListGroups:       "ListGroups",
	KindGroupList:        "GroupList",
	KindPing:             "Ping",
	KindPong:             "Pong",
	KindError:            "Error",
	KindTransferChunk:    "TransferChunk",
	KindTransferDone:     "TransferDone",
	KindDeliverBatch:     "DeliverBatch",
	KindSHello:           "SHello",
	KindSHelloAck:        "SHelloAck",
	KindSForward:         "SForward",
	KindSDistribute:      "SDistribute",
	KindSInterest:        "SInterest",
	KindSMemberUpdate:    "SMemberUpdate",
	KindSHeartbeat:       "SHeartbeat",
	KindSServerList:      "SServerList",
	KindSElect:           "SElect",
	KindSElectReply:      "SElectReply",
	KindSStateRequest:    "SStateRequest",
	KindSStateResponse:   "SStateResponse",
	KindSGroupOp:         "SGroupOp",
	KindSGroupOpAck:      "SGroupOpAck",
	KindSSeqQuery:        "SSeqQuery",
	KindSSeqReport:       "SSeqReport",
	KindSDivergence:      "SDivergence",
	KindSGroupsQuery:     "SGroupsQuery",
	KindSGroupsReport:    "SGroupsReport",
	KindSMigrate:         "SMigrate",
	KindSMigrateOffer:    "SMigrateOffer",
	KindSMigrateChunk:    "SMigrateChunk",
	KindSMigrateCutover:  "SMigrateCutover",
	KindSMigrateResult:   "SMigrateResult",
	KindSMigrated:        "SMigrated",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is any protocol message. Encode appends the body (without the
// leading Kind byte); decode fills the receiver from a body.
type Message interface {
	Kind() Kind
	Encode(e *Encoder)
	Decode(d *Decoder) error
}

// ErrUnknownKind is returned by Unmarshal for an unregistered kind byte.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// factories maps each kind to a constructor of its zero message.
var factories = map[Kind]func() Message{
	KindHello:            func() Message { return new(Hello) },
	KindHelloAck:         func() Message { return new(HelloAck) },
	KindCreateGroup:      func() Message { return new(CreateGroup) },
	KindCreateGroupAck:   func() Message { return new(CreateGroupAck) },
	KindDeleteGroup:      func() Message { return new(DeleteGroup) },
	KindDeleteGroupAck:   func() Message { return new(DeleteGroupAck) },
	KindJoin:             func() Message { return new(Join) },
	KindJoinAck:          func() Message { return new(JoinAck) },
	KindLeave:            func() Message { return new(Leave) },
	KindLeaveAck:         func() Message { return new(LeaveAck) },
	KindGetMembership:    func() Message { return new(GetMembership) },
	KindMembershipInfo:   func() Message { return new(MembershipInfo) },
	KindMembershipNotify: func() Message { return new(MembershipNotify) },
	KindBcast:            func() Message { return new(Bcast) },
	KindBcastAck:         func() Message { return new(BcastAck) },
	KindDeliver:          func() Message { return new(Deliver) },
	KindLockAcquire:      func() Message { return new(LockAcquire) },
	KindLockRelease:      func() Message { return new(LockRelease) },
	KindLockReply:        func() Message { return new(LockReply) },
	KindReduceLog:        func() Message { return new(ReduceLog) },
	KindReduceLogAck:     func() Message { return new(ReduceLogAck) },
	KindListGroups:       func() Message { return new(ListGroups) },
	KindGroupList:        func() Message { return new(GroupList) },
	KindPing:             func() Message { return new(Ping) },
	KindPong:             func() Message { return new(Pong) },
	KindError:            func() Message { return new(ErrorMsg) },
	KindTransferChunk:    func() Message { return new(TransferChunk) },
	KindTransferDone:     func() Message { return new(TransferDone) },
	KindDeliverBatch:     func() Message { return new(DeliverBatch) },
	KindSHello:           func() Message { return new(SHello) },
	KindSHelloAck:        func() Message { return new(SHelloAck) },
	KindSForward:         func() Message { return new(SForward) },
	KindSDistribute:      func() Message { return new(SDistribute) },
	KindSInterest:        func() Message { return new(SInterest) },
	KindSMemberUpdate:    func() Message { return new(SMemberUpdate) },
	KindSHeartbeat:       func() Message { return new(SHeartbeat) },
	KindSServerList:      func() Message { return new(SServerList) },
	KindSElect:           func() Message { return new(SElect) },
	KindSElectReply:      func() Message { return new(SElectReply) },
	KindSStateRequest:    func() Message { return new(SStateRequest) },
	KindSStateResponse:   func() Message { return new(SStateResponse) },
	KindSGroupOp:         func() Message { return new(SGroupOp) },
	KindSGroupOpAck:      func() Message { return new(SGroupOpAck) },
	KindSSeqQuery:        func() Message { return new(SSeqQuery) },
	KindSSeqReport:       func() Message { return new(SSeqReport) },
	KindSDivergence:      func() Message { return new(SDivergence) },
	KindSGroupsQuery:     func() Message { return new(SGroupsQuery) },
	KindSGroupsReport:    func() Message { return new(SGroupsReport) },
	KindSMigrate:         func() Message { return new(SMigrate) },
	KindSMigrateOffer:    func() Message { return new(SMigrateOffer) },
	KindSMigrateChunk:    func() Message { return new(SMigrateChunk) },
	KindSMigrateCutover:  func() Message { return new(SMigrateCutover) },
	KindSMigrateResult:   func() Message { return new(SMigrateResult) },
	KindSMigrated:        func() Message { return new(SMigrated) },
}

// Marshal encodes msg as a kind byte followed by the message body, appending
// to buf (which may be nil) and returning the result.
func Marshal(buf []byte, msg Message) []byte {
	e := NewEncoder(buf)
	e.PutByte(byte(msg.Kind()))
	msg.Encode(e)
	return e.Bytes()
}

// Unmarshal decodes one message from data. Byte-slice fields are copied, so
// the result does not alias data.
func Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrShortBuffer
	}
	k := Kind(data[0])
	mk, ok := factories[k]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
	msg := mk()
	d := NewDecoder(data[1:])
	if err := msg.Decode(d); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", k, err)
	}
	return msg, nil
}
