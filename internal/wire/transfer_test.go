package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// referencePayload is the non-streamed encoding the stream must reproduce
// byte for byte: objects then events, standard framing.
func referencePayload(objs []Object, evs []Event) []byte {
	e := NewEncoder(nil)
	encodeObjects(e, objs)
	encodeEvents(e, evs)
	return e.Bytes()
}

func drain(t *testing.T, s *TransferStream, max int) []byte {
	t.Helper()
	var out []byte
	for {
		chunk, off := s.Next(max)
		if chunk == nil {
			break
		}
		if off != uint64(len(out)) {
			t.Fatalf("chunk offset %d, want %d", off, len(out))
		}
		if len(chunk) > max {
			t.Fatalf("chunk of %d bytes exceeds max %d", len(chunk), max)
		}
		out = append(out, chunk...)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", s.Remaining())
	}
	return out
}

func TestTransferStreamMatchesInlineEncoding(t *testing.T) {
	objs := []Object{
		{ID: "alpha", Data: bytes.Repeat([]byte("A"), 1000)},
		{ID: "empty"},
		{ID: "beta", Data: []byte("b")},
	}
	evs := []Event{
		{Seq: 41, Kind: EventState, ObjectID: "alpha", Data: []byte("fresh"), Sender: 7, Time: 1234},
		{Seq: 42, Kind: EventUpdate, ObjectID: "beta", Data: nil, Sender: 8, Time: -5},
	}
	want := referencePayload(objs, evs)
	for _, max := range []int{1, 7, 64, 1000, 1 << 20} {
		s := NewTransferStream(objs, evs)
		if s.Total() != uint64(len(want)) {
			t.Fatalf("max %d: Total = %d, want %d", max, s.Total(), len(want))
		}
		got := drain(t, s, max)
		if !bytes.Equal(got, want) {
			t.Fatalf("max %d: stream output differs from inline encoding", max)
		}
		gotObjs, gotEvs, err := DecodeTransferPayload(got)
		if err != nil {
			t.Fatalf("max %d: DecodeTransferPayload: %v", max, err)
		}
		if !reflect.DeepEqual(gotObjs, objs) {
			t.Errorf("max %d: objects differ: %+v", max, gotObjs)
		}
		if !reflect.DeepEqual(gotEvs, evs) {
			t.Errorf("max %d: events differ: %+v", max, gotEvs)
		}
	}
}

func TestTransferStreamEmpty(t *testing.T) {
	s := NewTransferStream(nil, nil)
	got := drain(t, s, TransferChunkSize)
	objs, evs, err := DecodeTransferPayload(got)
	if err != nil || objs != nil || evs != nil {
		t.Fatalf("empty payload decoded to %v, %v, %v", objs, evs, err)
	}
}

// TestTransferStreamSharesData is the O(1) claim: the stream must reference
// the caller's data buffers, not copy them.
func TestTransferStreamSharesData(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 4096)
	s := NewTransferStream([]Object{{ID: "o", Data: big}}, nil)
	found := false
	for _, seg := range s.segs {
		if len(seg) == len(big) && &seg[0] == &big[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("object data was copied into the stream, want shared segment")
	}
}

func TestDecodeTransferPayloadErrors(t *testing.T) {
	good := referencePayload([]Object{{ID: "o", Data: []byte("data")}}, nil)
	if _, _, err := DecodeTransferPayload(good[:len(good)-2]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, _, err := DecodeTransferPayload(append(good, 0xFF)); err == nil {
		t.Error("payload with trailing bytes decoded without error")
	}
}

func TestQuickTransferStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blob := func(n int) []byte {
		if n == 0 {
			return nil
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for iter := 0; iter < 100; iter++ {
		var objs []Object
		for i := 0; i < rng.Intn(5); i++ {
			objs = append(objs, Object{ID: string(rune('a' + i)), Data: blob(rng.Intn(2000))})
		}
		var evs []Event
		for i := 0; i < rng.Intn(5); i++ {
			evs = append(evs, Event{
				Seq: uint64(i + 1), Kind: EventUpdate, ObjectID: "o",
				Data: blob(rng.Intn(2000)), Sender: uint64(rng.Intn(9)), Time: rng.Int63(),
			})
		}
		max := 1 + rng.Intn(3000)
		got := drain(t, NewTransferStream(objs, evs), max)
		if want := referencePayload(objs, evs); !bytes.Equal(got, want) {
			t.Fatalf("iter %d (max %d): stream output differs", iter, max)
		}
	}
}
