package wire

import (
	"bytes"
	"testing"
)

// encodePayload drains a fresh TransferStream over the given payload into
// one contiguous buffer — the canonical transfer encoding.
func encodePayload(t testing.TB, objects []Object, events []Event, chunk int) []byte {
	t.Helper()
	s := NewTransferStream(objects, events)
	var out []byte
	for {
		c, off := s.Next(chunk)
		if c == nil {
			break
		}
		if off != uint64(len(out)) {
			t.Fatalf("chunk offset %d, want %d", off, len(out))
		}
		out = append(out, c...)
	}
	if uint64(len(out)) != s.Total() {
		t.Fatalf("drained %d bytes, Total() = %d", len(out), s.Total())
	}
	return out
}

func payloadsEqual(a0 []Object, e0 []Event, a1 []Object, e1 []Event) bool {
	if len(a0) != len(a1) || len(e0) != len(e1) {
		return false
	}
	for i := range a0 {
		if a0[i].ID != a1[i].ID || !bytes.Equal(a0[i].Data, a1[i].Data) {
			return false
		}
	}
	for i := range e0 {
		if e0[i].Seq != e1[i].Seq || e0[i].Kind != e1[i].Kind ||
			e0[i].ObjectID != e1[i].ObjectID || !bytes.Equal(e0[i].Data, e1[i].Data) ||
			e0[i].Sender != e1[i].Sender || e0[i].Time != e1[i].Time {
			return false
		}
	}
	return true
}

// FuzzTransferPayload feeds arbitrary bytes to the transfer payload
// decoder; whenever they parse, re-encoding through a TransferStream and
// decoding again must reproduce the same payload.
func FuzzTransferPayload(f *testing.F) {
	f.Add([]byte{0, 0})                               // empty payload
	f.Add(encodePayloadSeed())                        // valid two-object payload
	f.Add([]byte{2, 1, 'a', 3, 1, 2, 3, 1, 'b', 0})   // truncated
	f.Add([]byte{255, 255, 255, 255, 255, 255, 0, 0}) // huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		objs, evs, err := DecodeTransferPayload(data)
		if err != nil {
			return
		}
		re := encodePayload(t, objs, evs, 16)
		objs2, evs2, err := DecodeTransferPayload(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
		if !payloadsEqual(objs, evs, objs2, evs2) {
			t.Fatalf("payload round-trip mismatch:\n  first: %v %v\n second: %v %v", objs, evs, objs2, evs2)
		}
	})
}

func encodePayloadSeed() []byte {
	s := NewTransferStream(
		[]Object{{ID: "board", Data: []byte{1, 2, 3}}, {ID: "cursor", Data: nil}},
		[]Event{{Seq: 4, Kind: EventUpdate, ObjectID: "board", Data: []byte{9}, Sender: 7, Time: 42}},
	)
	var out []byte
	for {
		c, _ := s.Next(64)
		if c == nil {
			return out
		}
		out = append(out, c...)
	}
}

// FuzzDeliverBatch round-trips arbitrary bytes through the framed message
// codec; frames that decode as DeliverBatch must re-encode to a frame that
// decodes identically. This is the one message the batching pipeline added
// to the client-facing protocol, so its decoder sees untrusted input.
func FuzzDeliverBatch(f *testing.F) {
	f.Add(Marshal(nil, &DeliverBatch{Group: "g"})) // empty batch
	f.Add(Marshal(nil, &DeliverBatch{Group: "solo", Events: []Event{
		{Seq: 1, Kind: EventState, ObjectID: "o", Data: []byte("d"), Sender: 3, Time: 99},
	}}))
	big := &DeliverBatch{Group: "burst"}
	for i := 0; i < 64; i++ { // a full ingest-cap batch
		big.Events = append(big.Events, Event{
			Seq: uint64(i + 1), Kind: EventUpdate, ObjectID: "obj", Data: []byte{byte(i), byte(i >> 1)}, Sender: uint64(i % 7), Time: int64(i) << 20,
		})
	}
	seed := Marshal(nil, big)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                                  // truncated mid-event
	f.Add([]byte{byte(KindDeliverBatch), 0, 1, 'g', 255, 255}) // huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		b, ok := msg.(*DeliverBatch)
		if !ok {
			return
		}
		re := Marshal(nil, b)
		msg2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		b2 := msg2.(*DeliverBatch)
		if b.Group != b2.Group || !payloadsEqual(nil, b.Events, nil, b2.Events) {
			t.Fatalf("batch round-trip mismatch:\n  first: %q %v\n second: %q %v", b.Group, b.Events, b2.Group, b2.Events)
		}
	})
}

// FuzzTransferChunk round-trips arbitrary bytes through the framed
// message codec; frames that decode as TransferChunk must re-encode to a
// frame that decodes identically.
func FuzzTransferChunk(f *testing.F) {
	seed := Marshal(nil, &TransferChunk{RequestID: 9, Group: "g", Offset: 128, Total: 4096, Data: []byte("chunkchunk")})
	f.Add(seed)
	f.Add(Marshal(nil, &TransferChunk{Group: ""}))
	f.Add([]byte{byte(KindTransferChunk), 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		c, ok := msg.(*TransferChunk)
		if !ok {
			return
		}
		re := Marshal(nil, c)
		msg2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk failed: %v", err)
		}
		c2 := msg2.(*TransferChunk)
		if c.RequestID != c2.RequestID || c.Group != c2.Group || c.Offset != c2.Offset ||
			c.Total != c2.Total || !bytes.Equal(c.Data, c2.Data) {
			t.Fatalf("chunk round-trip mismatch: %+v != %+v", c, c2)
		}
	})
}

// FuzzTransferStream builds a structured payload from fuzzed inputs,
// streams it at a fuzzed chunk size, reassembles, and checks the decode
// matches the input payload exactly.
func FuzzTransferStream(f *testing.F) {
	f.Add([]byte("objdata"), []byte("evdata"), uint8(3), 7)
	f.Add([]byte{}, []byte{0xff}, uint8(1), 1)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{}, uint8(5), 3)
	f.Fuzz(func(t *testing.T, objData, evData []byte, nObjs uint8, chunk int) {
		if chunk <= 0 || chunk > 1<<16 {
			return
		}
		objects := make([]Object, 0, nObjs)
		for i := 0; i < int(nObjs); i++ {
			// Slice the fuzzed bytes differently per object so buffers
			// overlap — the stream must not care.
			lo := i % (len(objData) + 1)
			objects = append(objects, Object{ID: string(rune('a' + i%26)), Data: objData[lo:]})
		}
		events := []Event{
			{Seq: 1, Kind: EventState, ObjectID: "x", Data: evData, Sender: uint64(nObjs)},
			{Seq: 2, Kind: EventUpdate, ObjectID: "x", Data: objData, Time: int64(chunk)},
		}
		payload := encodePayload(t, objects, events, chunk)
		objs2, evs2, err := DecodeTransferPayload(payload)
		if err != nil {
			t.Fatalf("decode of streamed payload failed: %v", err)
		}
		// The codec normalizes empty Data to nil; normalize the inputs
		// the same way before comparing.
		norm := make([]Object, len(objects))
		copy(norm, objects)
		for i := range norm {
			if len(norm[i].Data) == 0 {
				norm[i].Data = nil
			}
		}
		ne := make([]Event, len(events))
		copy(ne, events)
		for i := range ne {
			if len(ne[i].Data) == 0 {
				ne[i].Data = nil
			}
		}
		if !payloadsEqual(norm, ne, objs2, evs2) {
			t.Fatalf("stream round-trip mismatch at chunk=%d:\n  in: %v %v\n out: %v %v", chunk, norm, ne, objs2, evs2)
		}
	})
}
