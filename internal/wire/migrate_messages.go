package wire

// This file defines the live group-migration messages (placement subsystem):
// the coordinator directs a source server to stream one group replica to a
// target server over a direct peer connection, reusing the chunked
// state-transfer encoding so the move is zero-copy on the source and
// bounded-memory on the wire. Deliveries stay gapless because the target
// installs the streamed image, registers interest, and heals the seq window
// between capture and registration through the ordinary catch-up path.

// LoadReport is a server's lightweight load summary, piggybacked on every
// server→coordinator SHeartbeat so the placement manager can weigh servers
// without extra round trips. The counters come from the engine's obs gauges,
// so assembling a report is a handful of atomic loads.
type LoadReport struct {
	// Groups is the number of group replicas the server hosts.
	Groups uint64
	// Sessions is the number of connected client sessions.
	Sessions uint64
	// Bcasts is the cumulative count of multicasts the server has
	// delivered; the coordinator differentiates consecutive reports into a
	// rate.
	Bcasts uint64
}

func (l LoadReport) encode(e *Encoder) {
	e.PutUvarint(l.Groups)
	e.PutUvarint(l.Sessions)
	e.PutUvarint(l.Bcasts)
}

func decodeLoadReport(d *Decoder) LoadReport {
	return LoadReport{
		Groups:   d.Uvarint(),
		Sessions: d.Uvarint(),
		Bcasts:   d.Uvarint(),
	}
}

// SMigrate directs a source server to stream one of its group replicas to a
// target server (coordinator → source).
type SMigrate struct {
	RequestID uint64
	Group     string
	TargetID  uint64
	// TargetAddr is the target's peer listener address; the source dials
	// it directly so the bulk transfer never transits the coordinator.
	TargetAddr string
}

// Kind implements Message.
func (*SMigrate) Kind() Kind { return KindSMigrate }

// Encode implements Message.
func (m *SMigrate) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.TargetID)
	e.PutString(m.TargetAddr)
}

// Decode implements Message.
func (m *SMigrate) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.TargetID = d.Uvarint()
	m.TargetAddr = d.String()
	return d.Err()
}

// SMigrateOffer opens a migration stream on the target's peer listener
// (source → target). It carries the captured image's bounds so the target
// can verify the reassembled payload before installing it.
type SMigrateOffer struct {
	RequestID uint64
	SourceID  uint64
	Group     string
	// Persistent mirrors the group's registration flag.
	Persistent bool
	BaseSeq    uint64
	NextSeq    uint64
	// Digest is the source replica's history digest at NextSeq-1.
	Digest uint64
	// Total is the transfer payload size in bytes.
	Total uint64
	// Members is the source's view of the group's global membership, so
	// the target can seed its member mirror before serving joins.
	Members []MemberInfo
}

// Kind implements Message.
func (*SMigrateOffer) Kind() Kind { return KindSMigrateOffer }

// Encode implements Message.
func (m *SMigrateOffer) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.SourceID)
	e.PutString(m.Group)
	e.PutBool(m.Persistent)
	e.PutUvarint(m.BaseSeq)
	e.PutUvarint(m.NextSeq)
	e.PutUint64(m.Digest)
	e.PutUvarint(m.Total)
	encodeMembers(e, m.Members)
}

// Decode implements Message.
func (m *SMigrateOffer) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.SourceID = d.Uvarint()
	m.Group = d.String()
	m.Persistent = d.Bool()
	m.BaseSeq = d.Uvarint()
	m.NextSeq = d.Uvarint()
	m.Digest = d.Uint64()
	m.Total = d.Uvarint()
	m.Members = decodeMembers(d)
	return d.Err()
}

// SMigrateChunk carries one chunk of the migration payload (source →
// target), encoded exactly like a client TransferChunk payload.
type SMigrateChunk struct {
	RequestID uint64
	// Offset is this chunk's starting byte position within the payload.
	Offset uint64
	// Data aliases the decode buffer: it is valid only until the
	// connection's next read. The receiver appends it to its reassembly
	// buffer immediately, so a per-chunk defensive copy would only double
	// the transfer's allocation volume.
	Data []byte
}

// Kind implements Message.
func (*SMigrateChunk) Kind() Kind { return KindSMigrateChunk }

// Encode implements Message.
func (m *SMigrateChunk) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.Offset)
	e.PutBytes(m.Data)
}

// Decode implements Message.
func (m *SMigrateChunk) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Offset = d.Uvarint()
	//lint:allow aliasretain Data documents the aliasing contract: valid until the next read, appended immediately
	m.Data = d.Bytes()
	return d.Err()
}

// SMigrateCutover terminates the migration stream (source → target). It
// repeats the image's sequence high-water mark and digest so the target can
// prove the reassembled state is exactly the captured image before cutting
// over; events sequenced after NextSeq-1 reach the target through the
// ordinary distribute/catch-up path, keeping per-group order gapless.
type SMigrateCutover struct {
	RequestID uint64
	NextSeq   uint64
	Digest    uint64
}

// Kind implements Message.
func (*SMigrateCutover) Kind() Kind { return KindSMigrateCutover }

// Encode implements Message.
func (m *SMigrateCutover) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.NextSeq)
	e.PutUint64(m.Digest)
}

// Decode implements Message.
func (m *SMigrateCutover) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.NextSeq = d.Uvarint()
	m.Digest = d.Uint64()
	return d.Err()
}

// SMigrateResult reports the target's install outcome back over the
// migration connection (target → source).
type SMigrateResult struct {
	RequestID uint64
	OK        bool
	Text      string
	// NextSeq is the target replica's next expected sequence number after
	// install (and any catch-up it has already run).
	NextSeq uint64
}

// Kind implements Message.
func (*SMigrateResult) Kind() Kind { return KindSMigrateResult }

// Encode implements Message.
func (m *SMigrateResult) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutBool(m.OK)
	e.PutString(m.Text)
	e.PutUvarint(m.NextSeq)
}

// Decode implements Message.
func (m *SMigrateResult) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.OK = d.Bool()
	m.Text = d.String()
	m.NextSeq = d.Uvarint()
	return d.Err()
}

// SMigrated reports a finished migration to the coordinator (source →
// coordinator), successful or not, so the placement manager can retire its
// in-flight record.
type SMigrated struct {
	RequestID uint64
	Group     string
	SourceID  uint64
	TargetID  uint64
	OK        bool
	Text      string
	// Bytes is the payload volume streamed to the target.
	Bytes uint64
	// Released reports whether the source dropped its replica after the
	// move; it keeps the replica when local members joined mid-stream.
	Released bool
}

// Kind implements Message.
func (*SMigrated) Kind() Kind { return KindSMigrated }

// Encode implements Message.
func (m *SMigrated) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.SourceID)
	e.PutUvarint(m.TargetID)
	e.PutBool(m.OK)
	e.PutString(m.Text)
	e.PutUvarint(m.Bytes)
	e.PutBool(m.Released)
}

// Decode implements Message.
func (m *SMigrated) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.SourceID = d.Uvarint()
	m.TargetID = d.Uvarint()
	m.OK = d.Bool()
	m.Text = d.String()
	m.Bytes = d.Uvarint()
	m.Released = d.Bool()
	return d.Err()
}
