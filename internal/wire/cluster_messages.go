package wire

import "fmt"

// This file defines the server↔server messages of the replicated service
// (paper §4): a star topology in which one server acts as coordinator and
// sequencer and the other servers are its clients.

// GroupOpKind enumerates group-registry operations propagated between
// servers.
type GroupOpKind uint8

// Group operations.
const (
	GroupOpCreate GroupOpKind = iota + 1
	GroupOpDelete
)

// SHello registers a server with the coordinator.
type SHello struct {
	RequestID uint64
	// ServerID is the registering server's stable identity.
	ServerID uint64
	// Addr is the address on which the server accepts peer connections.
	Addr string
	// Epoch is the highest coordinator epoch the server has seen, so a
	// rejoining server after a partition can be detected.
	Epoch uint64
}

// Kind implements Message.
func (*SHello) Kind() Kind { return KindSHello }

// Encode implements Message.
func (m *SHello) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.ServerID)
	e.PutString(m.Addr)
	e.PutUvarint(m.Epoch)
}

// Decode implements Message.
func (m *SHello) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.ServerID = d.Uvarint()
	m.Addr = d.String()
	m.Epoch = d.Uvarint()
	return d.Err()
}

// SHelloAck completes server registration and distributes the current
// server list.
type SHelloAck struct {
	RequestID     uint64
	CoordinatorID uint64
	Epoch         uint64
	// BootOrder is the order assigned to the registering server.
	BootOrder uint64
	Servers   []ServerInfo
}

// Kind implements Message.
func (*SHelloAck) Kind() Kind { return KindSHelloAck }

// Encode implements Message.
func (m *SHelloAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.CoordinatorID)
	e.PutUvarint(m.Epoch)
	e.PutUvarint(m.BootOrder)
	encodeServers(e, m.Servers)
}

// Decode implements Message.
func (m *SHelloAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.CoordinatorID = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.BootOrder = d.Uvarint()
	m.Servers = decodeServers(d)
	return d.Err()
}

// SForward carries a client multicast from a member server to the
// coordinator for sequencing. The Event's Seq and Time are unset; the
// coordinator assigns them.
type SForward struct {
	// Origin is the forwarding server.
	Origin uint64
	Group  string
	Event  Event
	// SenderInclusive mirrors the client's flag; when false the origin
	// server suppresses delivery back to Event.Sender.
	SenderInclusive bool
	// RequestID correlates the origin server's pending client ack.
	RequestID uint64
}

// Kind implements Message.
func (*SForward) Kind() Kind { return KindSForward }

// Encode implements Message.
func (m *SForward) Encode(e *Encoder) {
	e.PutUvarint(m.Origin)
	e.PutString(m.Group)
	m.Event.encode(e)
	e.PutBool(m.SenderInclusive)
	e.PutUvarint(m.RequestID)
}

// Decode implements Message.
func (m *SForward) Decode(d *Decoder) error {
	m.Origin = d.Uvarint()
	m.Group = d.String()
	m.Event = decodeEvent(d)
	m.SenderInclusive = d.Bool()
	m.RequestID = d.Uvarint()
	return d.Err()
}

// SDistribute carries a sequenced multicast from the coordinator to every
// server with members (or a replica) of the group.
type SDistribute struct {
	Group string
	Event Event
	// SenderInclusive tells the origin server whether to deliver back to
	// Event.Sender.
	SenderInclusive bool
	// Origin is the server that forwarded the message, so it can complete
	// the client's pending ack identified by RequestID.
	Origin    uint64
	RequestID uint64
}

// Kind implements Message.
func (*SDistribute) Kind() Kind { return KindSDistribute }

// Encode implements Message.
func (m *SDistribute) Encode(e *Encoder) {
	e.PutString(m.Group)
	m.Event.encode(e)
	e.PutBool(m.SenderInclusive)
	e.PutUvarint(m.Origin)
	e.PutUvarint(m.RequestID)
}

// Decode implements Message.
func (m *SDistribute) Decode(d *Decoder) error {
	m.Group = d.String()
	m.Event = decodeEvent(d)
	m.SenderInclusive = d.Bool()
	m.Origin = d.Uvarint()
	m.RequestID = d.Uvarint()
	return d.Err()
}

// SInterest tells the coordinator whether a server hosts members of a group
// (or holds a backup replica), so broadcasts are routed only to interested
// servers (paper §4: "Only the servers who have members in that particular
// group will receive the broadcast message").
type SInterest struct {
	ServerID   uint64
	Group      string
	Interested bool
	// Members is the server's local member count for the group.
	Members uint64
	// Backup marks interest held purely as an elected hot-standby replica.
	Backup bool
}

// Kind implements Message.
func (*SInterest) Kind() Kind { return KindSInterest }

// Encode implements Message.
func (m *SInterest) Encode(e *Encoder) {
	e.PutUvarint(m.ServerID)
	e.PutString(m.Group)
	e.PutBool(m.Interested)
	e.PutUvarint(m.Members)
	e.PutBool(m.Backup)
}

// Decode implements Message.
func (m *SInterest) Decode(d *Decoder) error {
	m.ServerID = d.Uvarint()
	m.Group = d.String()
	m.Interested = d.Bool()
	m.Members = d.Uvarint()
	m.Backup = d.Bool()
	return d.Err()
}

// SMemberUpdate propagates a membership change to the coordinator, which
// maintains global group membership and fans notifications out to
// subscribed members on other servers.
type SMemberUpdate struct {
	ServerID uint64
	Group    string
	Change   MembershipChange
	Member   MemberInfo
}

// Kind implements Message.
func (*SMemberUpdate) Kind() Kind { return KindSMemberUpdate }

// Encode implements Message.
func (m *SMemberUpdate) Encode(e *Encoder) {
	e.PutUvarint(m.ServerID)
	e.PutString(m.Group)
	e.PutByte(byte(m.Change))
	m.Member.encode(e)
}

// Decode implements Message.
func (m *SMemberUpdate) Decode(d *Decoder) error {
	m.ServerID = d.Uvarint()
	m.Group = d.String()
	m.Change = MembershipChange(d.Byte())
	m.Member = decodeMemberInfo(d)
	return d.Err()
}

// SHeartbeat is exchanged between the coordinator and each server to detect
// failures (paper §4.2).
type SHeartbeat struct {
	ServerID uint64
	Epoch    uint64
	// Time is the sender's clock, Unix nanoseconds, for diagnostics.
	Time int64
	// Load is the sender's load report (server→coordinator heartbeats
	// only; zero on coordinator heartbeats and echoes). The placement
	// manager differentiates consecutive reports into per-server rates.
	Load LoadReport
}

// Kind implements Message.
func (*SHeartbeat) Kind() Kind { return KindSHeartbeat }

// Encode implements Message.
func (m *SHeartbeat) Encode(e *Encoder) {
	e.PutUvarint(m.ServerID)
	e.PutUvarint(m.Epoch)
	e.PutVarint(m.Time)
	m.Load.encode(e)
}

// Decode implements Message.
func (m *SHeartbeat) Decode(d *Decoder) error {
	m.ServerID = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.Time = d.Varint()
	m.Load = decodeLoadReport(d)
	return d.Err()
}

// SServerList distributes the coordinator's view of the server set, sorted
// by boot order. Servers keep it to establish connections and to run
// coordinator succession.
type SServerList struct {
	CoordinatorID uint64
	Epoch         uint64
	Servers       []ServerInfo
}

// Kind implements Message.
func (*SServerList) Kind() Kind { return KindSServerList }

// Encode implements Message.
func (m *SServerList) Encode(e *Encoder) {
	e.PutUvarint(m.CoordinatorID)
	e.PutUvarint(m.Epoch)
	encodeServers(e, m.Servers)
}

// Decode implements Message.
func (m *SServerList) Decode(d *Decoder) error {
	m.CoordinatorID = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.Servers = decodeServers(d)
	return d.Err()
}

// SElect announces a candidate's claim to the coordinator role after the
// previous coordinator is suspected down. The claim succeeds when a
// majority of the remaining servers ack (paper §4.2).
type SElect struct {
	CandidateID uint64
	// Epoch is the new epoch the candidate will rule if elected; it must
	// exceed every epoch the receiver has seen.
	Epoch uint64
	Addr  string
}

// Kind implements Message.
func (*SElect) Kind() Kind { return KindSElect }

// Encode implements Message.
func (m *SElect) Encode(e *Encoder) {
	e.PutUvarint(m.CandidateID)
	e.PutUvarint(m.Epoch)
	e.PutString(m.Addr)
}

// Decode implements Message.
func (m *SElect) Decode(d *Decoder) error {
	m.CandidateID = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.Addr = d.String()
	return d.Err()
}

// SElectReply acks or nacks an SElect. A server nacks when it can still
// reach the incumbent coordinator (the candidate "wrongfully assumed that
// the coordinator is down") or has seen a higher epoch. Nacks carry the
// voter's view of the ruling coordinator so a failed candidate — or a
// server that slept through an election — can find the new regime.
type SElectReply struct {
	VoterID     uint64
	CandidateID uint64
	// Epoch is the voter's highest known epoch on a nack, echoing the
	// candidate's epoch on an ack.
	Epoch uint64
	Ack   bool
	// CoordAddr is the voter's known coordinator peer address (nacks).
	CoordAddr string
}

// Kind implements Message.
func (*SElectReply) Kind() Kind { return KindSElectReply }

// Encode implements Message.
func (m *SElectReply) Encode(e *Encoder) {
	e.PutUvarint(m.VoterID)
	e.PutUvarint(m.CandidateID)
	e.PutUvarint(m.Epoch)
	e.PutBool(m.Ack)
	e.PutString(m.CoordAddr)
}

// Decode implements Message.
func (m *SElectReply) Decode(d *Decoder) error {
	m.VoterID = d.Uvarint()
	m.CandidateID = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.Ack = d.Bool()
	m.CoordAddr = d.String()
	return d.Err()
}

// SStateRequest asks a peer for a group's state so the requester can become
// a replica (a server gaining its first local member, or an elected backup).
type SStateRequest struct {
	RequestID uint64
	Group     string
	// FromSeq requests only events after FromSeq when the requester
	// already holds a prefix; 0 requests a snapshot.
	FromSeq uint64
}

// Kind implements Message.
func (*SStateRequest) Kind() Kind { return KindSStateRequest }

// Encode implements Message.
func (m *SStateRequest) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.FromSeq)
}

// Decode implements Message.
func (m *SStateRequest) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.FromSeq = d.Uvarint()
	return d.Err()
}

// SStateResponse answers SStateRequest with a snapshot and/or event suffix.
// The coordinator, which relays the response, annotates it with the group's
// registration and global membership so the requester can serve joins
// immediately.
type SStateResponse struct {
	RequestID  uint64
	Group      string
	OK         bool
	Persistent bool
	BaseSeq    uint64
	NextSeq    uint64
	// Digest is the source replica's history digest at NextSeq-1.
	Digest  uint64
	Objects []Object
	Events  []Event
	// Members is the coordinator's global membership view of the group.
	Members []MemberInfo
}

// Kind implements Message.
func (*SStateResponse) Kind() Kind { return KindSStateResponse }

// Encode implements Message.
func (m *SStateResponse) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutBool(m.OK)
	e.PutBool(m.Persistent)
	e.PutUvarint(m.BaseSeq)
	e.PutUvarint(m.NextSeq)
	e.PutUint64(m.Digest)
	encodeObjects(e, m.Objects)
	encodeEvents(e, m.Events)
	encodeMembers(e, m.Members)
}

// Decode implements Message.
func (m *SStateResponse) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.OK = d.Bool()
	m.Persistent = d.Bool()
	m.BaseSeq = d.Uvarint()
	m.NextSeq = d.Uvarint()
	m.Digest = d.Uint64()
	m.Objects = decodeObjects(d)
	m.Events = decodeEvents(d)
	m.Members = decodeMembers(d)
	return d.Err()
}

// SGroupOp propagates a group create/delete through the coordinator to all
// servers, keeping every server's group registry consistent.
type SGroupOp struct {
	RequestID  uint64
	Origin     uint64
	Op         GroupOpKind
	Group      string
	Persistent bool
	Initial    []Object
}

// Kind implements Message.
func (*SGroupOp) Kind() Kind { return KindSGroupOp }

// Encode implements Message.
func (m *SGroupOp) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.Origin)
	e.PutByte(byte(m.Op))
	e.PutString(m.Group)
	e.PutBool(m.Persistent)
	encodeObjects(e, m.Initial)
}

// Decode implements Message.
func (m *SGroupOp) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Origin = d.Uvarint()
	m.Op = GroupOpKind(d.Byte())
	m.Group = d.String()
	m.Persistent = d.Bool()
	m.Initial = decodeObjects(d)
	return d.Err()
}

// SGroupOpAck confirms (or rejects) an SGroupOp back to the origin server.
type SGroupOpAck struct {
	RequestID uint64
	OK        bool
	Code      ErrCode
	Text      string
}

// Kind implements Message.
func (*SGroupOpAck) Kind() Kind { return KindSGroupOpAck }

// Encode implements Message.
func (m *SGroupOpAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutBool(m.OK)
	e.PutUvarint(uint64(m.Code))
	e.PutString(m.Text)
}

// Decode implements Message.
func (m *SGroupOpAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.OK = d.Bool()
	m.Code = ErrCode(d.Uvarint())
	m.Text = d.String()
	return d.Err()
}

// SSeqQuery is sent by a newly elected coordinator to recover per-group
// sequence counters: each server reports the highest sequence number it has
// applied for each group it replicates.
type SSeqQuery struct {
	RequestID uint64
	Epoch     uint64
}

// Kind implements Message.
func (*SSeqQuery) Kind() Kind { return KindSSeqQuery }

// Encode implements Message.
func (m *SSeqQuery) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.Epoch)
}

// Decode implements Message.
func (m *SSeqQuery) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Epoch = d.Uvarint()
	return d.Err()
}

// GroupSeq is one group's high-water mark in an SSeqReport.
type GroupSeq struct {
	Group string
	// NextSeq is the next sequence number the group expects (highest
	// applied + 1).
	NextSeq uint64
	// Digest is the replica's history digest at NextSeq-1, used to
	// detect post-partition divergence.
	Digest uint64
	// Persistent mirrors the group's persistence flag so a recovering
	// coordinator can rebuild its registry.
	Persistent bool
	// Members is the reporting server's local member count.
	Members uint64
}

func (g GroupSeq) encode(e *Encoder) {
	e.PutString(g.Group)
	e.PutUvarint(g.NextSeq)
	e.PutUint64(g.Digest)
	e.PutBool(g.Persistent)
	e.PutUvarint(g.Members)
}

func decodeGroupSeq(d *Decoder) GroupSeq {
	return GroupSeq{
		Group:      d.String(),
		NextSeq:    d.Uvarint(),
		Digest:     d.Uint64(),
		Persistent: d.Bool(),
		Members:    d.Uvarint(),
	}
}

// Resolution selects how a post-partition divergence is settled (paper
// §4.2: "The application is given the choice of either rolling back to the
// consistent state, selecting one of the available updated states or
// evolving as two different groups").
type Resolution uint8

// Divergence resolutions.
const (
	// ResolutionRollback discards the divergent replica's history; the
	// server re-fetches the authoritative state.
	ResolutionRollback Resolution = iota + 1
	// ResolutionAdopt makes the divergent replica's version
	// authoritative; the other replicas roll back to it.
	ResolutionAdopt
	// ResolutionFork preserves the divergent version as a new group
	// (ForkName) and rolls the original back to the authoritative state.
	ResolutionFork
)

func (r Resolution) String() string {
	switch r {
	case ResolutionRollback:
		return "rollback"
	case ResolutionAdopt:
		return "adopt"
	case ResolutionFork:
		return "fork"
	default:
		return fmt.Sprintf("Resolution(%d)", uint8(r))
	}
}

// SDivergence instructs a server how to settle a diverged group replica.
type SDivergence struct {
	Group      string
	Resolution Resolution
	// ForkName is the new group name under ResolutionFork.
	ForkName string
}

// Kind implements Message.
func (*SDivergence) Kind() Kind { return KindSDivergence }

// Encode implements Message.
func (m *SDivergence) Encode(e *Encoder) {
	e.PutString(m.Group)
	e.PutByte(byte(m.Resolution))
	e.PutString(m.ForkName)
}

// Decode implements Message.
func (m *SDivergence) Decode(d *Decoder) error {
	m.Group = d.String()
	m.Resolution = Resolution(d.Byte())
	m.ForkName = d.String()
	return d.Err()
}

// SSeqReport answers SSeqQuery.
type SSeqReport struct {
	RequestID uint64
	ServerID  uint64
	Groups    []GroupSeq
}

// Kind implements Message.
func (*SSeqReport) Kind() Kind { return KindSSeqReport }

// Encode implements Message.
func (m *SSeqReport) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.ServerID)
	e.PutUvarint(uint64(len(m.Groups)))
	for i := range m.Groups {
		m.Groups[i].encode(e)
	}
}

// Decode implements Message.
func (m *SSeqReport) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.ServerID = d.Uvarint()
	n := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if n > uint64(d.Remaining()) {
		return ErrShortBuffer
	}
	if n > 0 {
		m.Groups = make([]GroupSeq, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			m.Groups = append(m.Groups, decodeGroupSeq(d))
		}
	}
	return d.Err()
}

// SGroupsQuery asks the coordinator for the names of every group in the
// replicated service, so any member server can answer a client's
// ListGroups with the global view.
type SGroupsQuery struct {
	RequestID uint64
}

// Kind implements Message.
func (*SGroupsQuery) Kind() Kind { return KindSGroupsQuery }

// Encode implements Message.
func (m *SGroupsQuery) Encode(e *Encoder) { e.PutUvarint(m.RequestID) }

// Decode implements Message.
func (m *SGroupsQuery) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	return d.Err()
}

// SGroupsReport answers SGroupsQuery with the sorted group names.
type SGroupsReport struct {
	RequestID uint64
	Groups    []string
}

// Kind implements Message.
func (*SGroupsReport) Kind() Kind { return KindSGroupsReport }

// Encode implements Message.
func (m *SGroupsReport) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(uint64(len(m.Groups)))
	for _, g := range m.Groups {
		e.PutString(g)
	}
}

// Decode implements Message.
func (m *SGroupsReport) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	n := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if n > uint64(d.Remaining()) {
		return ErrShortBuffer
	}
	if n > 0 {
		m.Groups = make([]string, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			m.Groups = append(m.Groups, d.String())
		}
	}
	return d.Err()
}
