package wire

import "fmt"

// ProtocolVersion is negotiated in the Hello exchange. A server rejects
// clients speaking an unknown major version.
const ProtocolVersion = 1

// EventKind distinguishes the two multicast primitives of the paper:
// bcastState overrides an object's state, bcastUpdate appends an incremental
// change preserving the history of updates.
type EventKind uint8

// Event kinds.
const (
	// EventState carries a complete new state for an object; it replaces
	// the object's present state (paper: bcastState).
	EventState EventKind = iota + 1
	// EventUpdate carries an incremental change; it is appended to the
	// object's existing state (paper: bcastUpdate).
	EventUpdate
)

func (k EventKind) String() string {
	switch k {
	case EventState:
		return "state"
	case EventUpdate:
		return "update"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined event kind.
func (k EventKind) Valid() bool { return k == EventState || k == EventUpdate }

// Event is one sequenced multicast within a group: the unit stored in the
// state log, replayed on recovery, and delivered to members. Seq is assigned
// by the sequencer (the server, or the coordinator in a replicated service)
// and increases monotonically within a group, imposing a total order.
type Event struct {
	// Seq is the group-scoped total-order sequence number.
	Seq uint64
	// Kind says whether Data replaces (state) or extends (update) the object.
	Kind EventKind
	// ObjectID identifies the shared object within the group's state set.
	ObjectID string
	// Data is the opaque, client-interpreted byte-stream payload.
	Data []byte
	// Sender is the client ID of the originating member (0 for the server,
	// e.g. the initial-state events of a group).
	Sender uint64
	// Time is the server-assigned timestamp, Unix nanoseconds.
	Time int64
}

func (ev Event) encode(e *Encoder) {
	e.PutUvarint(ev.Seq)
	e.PutByte(byte(ev.Kind))
	e.PutString(ev.ObjectID)
	e.PutBytes(ev.Data)
	e.PutUvarint(ev.Sender)
	e.PutVarint(ev.Time)
}

func decodeEvent(d *Decoder) Event {
	return Event{
		Seq:      d.Uvarint(),
		Kind:     EventKind(d.Byte()),
		ObjectID: d.String(),
		Data:     d.ByteCopy(),
		Sender:   d.Uvarint(),
		Time:     d.Varint(),
	}
}

func encodeEvents(e *Encoder, evs []Event) {
	e.PutUvarint(uint64(len(evs)))
	for i := range evs {
		evs[i].encode(e)
	}
}

func decodeEvents(d *Decoder) []Event {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) { // every event takes >= 1 byte
		d.fail(ErrShortBuffer)
		return nil
	}
	evs := make([]Event, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		evs = append(evs, decodeEvent(d))
	}
	return evs
}

// Object is one element of a group's shared state: an identifier and the
// byte-stream encoding of the object's current state. The server never
// interprets Data (client-based semantics).
type Object struct {
	ID   string
	Data []byte
}

func (o Object) encode(e *Encoder) {
	e.PutString(o.ID)
	e.PutBytes(o.Data)
}

func decodeObject(d *Decoder) Object {
	return Object{ID: d.String(), Data: d.ByteCopy()}
}

func encodeObjects(e *Encoder, objs []Object) {
	e.PutUvarint(uint64(len(objs)))
	for i := range objs {
		objs[i].encode(e)
	}
}

func decodeObjects(d *Decoder) []Object {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	objs := make([]Object, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		objs = append(objs, decodeObject(d))
	}
	return objs
}

// bytesAlias reads a length-prefixed byte string aliasing the decoder's
// buffer, normalized to nil when empty so alias and copy decodes produce
// identical values.
//
// corona:aliases-input
func bytesAlias(d *Decoder) []byte {
	b := d.Bytes()
	if len(b) == 0 {
		return nil
	}
	return b
}

// decodeObjectsAlias is decodeObjects with Data aliasing the decoder's
// buffer; for callers that own the buffer outright (transfer reassembly).
//
// corona:aliases-input — and corona:zerocopy: this is the join transfer
// fast path; defensive copies here double the join's allocation volume.
func decodeObjectsAlias(d *Decoder) []Object {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	objs := make([]Object, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		objs = append(objs, Object{ID: d.String(), Data: bytesAlias(d)})
	}
	return objs
}

// decodeEventsAlias is decodeEvents with Data aliasing the decoder's
// buffer; for callers that own the buffer outright (transfer reassembly).
//
// corona:aliases-input — and corona:zerocopy: this is the join transfer
// fast path; defensive copies here double the join's allocation volume.
func decodeEventsAlias(d *Decoder) []Event {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	evs := make([]Event, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		evs = append(evs, Event{
			Seq:      d.Uvarint(),
			Kind:     EventKind(d.Byte()),
			ObjectID: d.String(),
			Data:     bytesAlias(d),
			Sender:   d.Uvarint(),
			Time:     d.Varint(),
		})
	}
	return evs
}

// TransferMode selects how the server transfers group state to a joining
// client (paper §3.2, "customized state transfer").
type TransferMode uint8

// Transfer modes.
const (
	// TransferFull sends the complete current shared state of the group.
	TransferFull TransferMode = iota + 1
	// TransferLastN sends only the latest N updates to the state.
	TransferLastN
	// TransferObjects sends only the state of the named objects.
	TransferObjects
	// TransferNone sends no state (the client only wants future messages).
	TransferNone
	// TransferResume sends every event after FromSeq if the server's log
	// still covers it, or falls back to a full snapshot. Used by
	// reconnecting clients to restore consistency (companion-paper [15]
	// behaviour).
	TransferResume
)

func (m TransferMode) String() string {
	switch m {
	case TransferFull:
		return "full"
	case TransferLastN:
		return "last-n"
	case TransferObjects:
		return "objects"
	case TransferNone:
		return "none"
	case TransferResume:
		return "resume"
	default:
		return fmt.Sprintf("TransferMode(%d)", uint8(m))
	}
}

// Valid reports whether m is a defined transfer mode.
func (m TransferMode) Valid() bool { return m >= TransferFull && m <= TransferResume }

// TransferPolicy is a joining client's state-transfer request.
type TransferPolicy struct {
	Mode TransferMode
	// LastN is the update count for TransferLastN.
	LastN uint32
	// Objects names the requested objects for TransferObjects.
	Objects []string
	// FromSeq is the first sequence number the client is missing, for
	// TransferResume.
	FromSeq uint64
}

// FullTransfer is the default policy: transfer the whole group state.
var FullTransfer = TransferPolicy{Mode: TransferFull}

func (p TransferPolicy) encode(e *Encoder) {
	e.PutByte(byte(p.Mode))
	e.PutUvarint(uint64(p.LastN))
	e.PutUvarint(uint64(len(p.Objects)))
	for _, id := range p.Objects {
		e.PutString(id)
	}
	e.PutUvarint(p.FromSeq)
}

func decodeTransferPolicy(d *Decoder) TransferPolicy {
	p := TransferPolicy{
		Mode:  TransferMode(d.Byte()),
		LastN: uint32(d.Uvarint()),
	}
	n := d.Uvarint()
	if d.err != nil {
		return p
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return p
	}
	if n > 0 {
		p.Objects = make([]string, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			p.Objects = append(p.Objects, d.String())
		}
	}
	p.FromSeq = d.Uvarint()
	return p
}

// Role is a member's relationship to the group (paper footnote 1: member
// roles specify the relationships among members of a group).
type Role uint8

// Member roles.
const (
	// RolePrincipal members operate on the shared state.
	RolePrincipal Role = iota + 1
	// RoleObserver members receive state and messages but are expected not
	// to modify the shared state; the session manager may enforce this.
	RoleObserver
)

func (r Role) String() string {
	switch r {
	case RolePrincipal:
		return "principal"
	case RoleObserver:
		return "observer"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Valid reports whether r is a defined role.
func (r Role) Valid() bool { return r == RolePrincipal || r == RoleObserver }

// MemberInfo describes one group member in membership snapshots and
// notifications.
type MemberInfo struct {
	ClientID uint64
	Name     string
	Role     Role
}

func (m MemberInfo) encode(e *Encoder) {
	e.PutUvarint(m.ClientID)
	e.PutString(m.Name)
	e.PutByte(byte(m.Role))
}

func decodeMemberInfo(d *Decoder) MemberInfo {
	return MemberInfo{
		ClientID: d.Uvarint(),
		Name:     d.String(),
		Role:     Role(d.Byte()),
	}
}

func encodeMembers(e *Encoder, ms []MemberInfo) {
	e.PutUvarint(uint64(len(ms)))
	for i := range ms {
		ms[i].encode(e)
	}
}

func decodeMembers(d *Decoder) []MemberInfo {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	ms := make([]MemberInfo, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ms = append(ms, decodeMemberInfo(d))
	}
	return ms
}

// MembershipChange is the cause of a membership notification.
type MembershipChange uint8

// Membership changes.
const (
	MemberJoined MembershipChange = iota + 1
	MemberLeft
	// MemberCrashed marks an involuntary leave detected by the server
	// (connection loss or heartbeat timeout).
	MemberCrashed
)

func (c MembershipChange) String() string {
	switch c {
	case MemberJoined:
		return "joined"
	case MemberLeft:
		return "left"
	case MemberCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("MembershipChange(%d)", uint8(c))
	}
}

// ServerInfo describes one server of a replicated Corona service. Servers
// are ordered by BootOrder (the order they were brought up), which drives
// coordinator succession.
type ServerInfo struct {
	ID        uint64
	Addr      string
	BootOrder uint64
}

func (s ServerInfo) encode(e *Encoder) {
	e.PutUvarint(s.ID)
	e.PutString(s.Addr)
	e.PutUvarint(s.BootOrder)
}

func decodeServerInfo(d *Decoder) ServerInfo {
	return ServerInfo{
		ID:        d.Uvarint(),
		Addr:      d.String(),
		BootOrder: d.Uvarint(),
	}
}

func encodeServers(e *Encoder, ss []ServerInfo) {
	e.PutUvarint(uint64(len(ss)))
	for i := range ss {
		ss[i].encode(e)
	}
}

func decodeServers(d *Decoder) []ServerInfo {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	ss := make([]ServerInfo, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ss = append(ss, decodeServerInfo(d))
	}
	return ss
}

// ErrCode classifies protocol-level errors reported in an ErrorMsg.
type ErrCode uint16

// Error codes.
const (
	CodeUnknown ErrCode = iota
	CodeNoSuchGroup
	CodeGroupExists
	CodeNotMember
	CodeAlreadyMember
	CodeDenied
	CodeBadRequest
	CodeLockHeld
	CodeOverloaded
	CodeInternal
	CodeBadVersion
	CodeShuttingDown
	// CodeNotDurable is the honest durability nack: the multicast was
	// delivered (ordering and fanout completed) but the stable-storage
	// commit failed, so the event may not survive a server restart. Sent
	// in place of BcastAck when the sync policy promised durability.
	CodeNotDurable
)

func (c ErrCode) String() string {
	switch c {
	case CodeUnknown:
		return "unknown"
	case CodeNoSuchGroup:
		return "no-such-group"
	case CodeGroupExists:
		return "group-exists"
	case CodeNotMember:
		return "not-member"
	case CodeAlreadyMember:
		return "already-member"
	case CodeDenied:
		return "denied"
	case CodeBadRequest:
		return "bad-request"
	case CodeLockHeld:
		return "lock-held"
	case CodeOverloaded:
		return "overloaded"
	case CodeInternal:
		return "internal"
	case CodeBadVersion:
		return "bad-version"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeNotDurable:
		return "not-durable"
	default:
		return fmt.Sprintf("ErrCode(%d)", uint16(c))
	}
}
