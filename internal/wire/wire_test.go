package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip marshals msg, unmarshals the bytes, and requires deep equality.
func roundTrip(t *testing.T, msg Message) {
	t.Helper()
	data := Marshal(nil, msg)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", msg.Kind(), err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("%s round trip mismatch:\n want %#v\n got  %#v", msg.Kind(), msg, got)
	}
}

func sampleEvent(seq uint64) Event {
	return Event{
		Seq:      seq,
		Kind:     EventUpdate,
		ObjectID: "canvas",
		Data:     []byte{1, 2, 3, 4},
		Sender:   42,
		Time:     1234567890,
	}
}

func TestRoundTripClientMessages(t *testing.T) {
	msgs := []Message{
		&Hello{RequestID: 1, Proto: ProtocolVersion, Name: "alice"},
		&HelloAck{RequestID: 1, ClientID: 7, ServerID: 3},
		&CreateGroup{RequestID: 2, Group: "g", Persistent: true, Initial: []Object{{ID: "o1", Data: []byte("x")}, {ID: "o2"}}},
		&CreateGroupAck{RequestID: 2},
		&DeleteGroup{RequestID: 3, Group: "g"},
		&DeleteGroupAck{RequestID: 3},
		&Join{
			RequestID: 4, Group: "g",
			Policy: TransferPolicy{Mode: TransferObjects, Objects: []string{"a", "b"}},
			Role:   RoleObserver, Notify: true, CreateIfMissing: true,
		},
		&Join{RequestID: 5, Group: "g", Policy: TransferPolicy{Mode: TransferLastN, LastN: 10}, Role: RolePrincipal},
		&Join{RequestID: 6, Group: "g", Policy: TransferPolicy{Mode: TransferResume, FromSeq: 99}, Role: RolePrincipal},
		&JoinAck{
			RequestID: 4, Group: "g", NextSeq: 11, BaseSeq: 5,
			Objects: []Object{{ID: "a", Data: []byte("aa")}},
			Events:  []Event{sampleEvent(6), sampleEvent(7)},
			Members: []MemberInfo{{ClientID: 1, Name: "alice", Role: RolePrincipal}},
		},
		&JoinAck{
			RequestID: 5, Group: "g", NextSeq: 100, BaseSeq: 99,
			Members:   []MemberInfo{{ClientID: 1, Name: "alice", Role: RolePrincipal}},
			Streaming: true,
		},
		&TransferChunk{RequestID: 5, Group: "g", Offset: 512, Total: 4096, Data: []byte("chunkbytes")},
		&TransferDone{RequestID: 5, Group: "g", Bytes: 4096},
		&Leave{RequestID: 8, Group: "g"},
		&LeaveAck{RequestID: 8},
		&GetMembership{RequestID: 9, Group: "g"},
		&MembershipInfo{RequestID: 9, Group: "g", Members: []MemberInfo{{ClientID: 2, Name: "bob", Role: RoleObserver}}},
		&MembershipNotify{Group: "g", Change: MemberCrashed, Member: MemberInfo{ClientID: 2, Name: "bob", Role: RoleObserver}, Count: 3},
		&Bcast{RequestID: 10, Group: "g", EvKind: EventState, ObjectID: "o", Data: []byte("payload"), SenderInclusive: true},
		&BcastAck{RequestID: 10, Seq: 77},
		&Deliver{Group: "g", Event: sampleEvent(77)},
		&LockAcquire{RequestID: 11, Group: "g", Name: "cursor", Wait: true},
		&LockRelease{RequestID: 12, Group: "g", Name: "cursor"},
		&LockReply{RequestID: 11, Granted: false, Holder: 9},
		&ReduceLog{RequestID: 13, Group: "g", UpToSeq: 50},
		&ReduceLogAck{RequestID: 13, BaseSeq: 50, Trimmed: 49},
		&ListGroups{RequestID: 14},
		&GroupList{RequestID: 14, Groups: []string{"g", "h"}},
		&Ping{Nonce: 123},
		&Pong{Nonce: 123},
		&ErrorMsg{RequestID: 15, Code: CodeNoSuchGroup, Text: "no such group"},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripClusterMessages(t *testing.T) {
	msgs := []Message{
		&SHello{RequestID: 1, ServerID: 2, Addr: "127.0.0.1:9000", Epoch: 3},
		&SHelloAck{
			RequestID: 1, CoordinatorID: 1, Epoch: 3, BootOrder: 2,
			Servers: []ServerInfo{{ID: 1, Addr: "a", BootOrder: 0}, {ID: 2, Addr: "b", BootOrder: 1}},
		},
		&SForward{Origin: 2, Group: "g", Event: sampleEvent(0), SenderInclusive: true, RequestID: 4},
		&SDistribute{Group: "g", Event: sampleEvent(8), SenderInclusive: false, Origin: 2, RequestID: 4},
		&SInterest{ServerID: 2, Group: "g", Interested: true, Members: 5, Backup: true},
		&SMemberUpdate{ServerID: 2, Group: "g", Change: MemberJoined, Member: MemberInfo{ClientID: 3, Name: "c", Role: RolePrincipal}},
		&SHeartbeat{ServerID: 2, Epoch: 3, Time: 42, Load: LoadReport{Groups: 4, Sessions: 17, Bcasts: 8192}},
		&SServerList{CoordinatorID: 1, Epoch: 3, Servers: []ServerInfo{{ID: 1, Addr: "a"}}},
		&SElect{CandidateID: 2, Epoch: 4, Addr: "127.0.0.1:9001"},
		&SElectReply{VoterID: 3, CandidateID: 2, Epoch: 4, Ack: true},
		&SStateRequest{RequestID: 5, Group: "g", FromSeq: 10},
		&SStateResponse{
			RequestID: 5, Group: "g", OK: true, Persistent: true, BaseSeq: 5, NextSeq: 12, Digest: 99,
			Objects: []Object{{ID: "o", Data: []byte("s")}},
			Events:  []Event{sampleEvent(10), sampleEvent(11)},
			Members: []MemberInfo{{ClientID: 9, Name: "m", Role: RolePrincipal}},
		},
		&SGroupOp{RequestID: 6, Origin: 2, Op: GroupOpCreate, Group: "g", Persistent: true, Initial: []Object{{ID: "o"}}},
		&SGroupOpAck{RequestID: 6, OK: false, Code: CodeGroupExists, Text: "exists"},
		&SSeqQuery{RequestID: 7, Epoch: 4},
		&SSeqReport{RequestID: 7, ServerID: 2, Groups: []GroupSeq{{Group: "g", NextSeq: 12, Digest: 0xDEADBEEF, Persistent: true, Members: 2}}},
		&SDivergence{Group: "g", Resolution: ResolutionFork, ForkName: "g.fork-2"},
		&SDivergence{Group: "g", Resolution: ResolutionRollback},
		&SGroupsQuery{RequestID: 8},
		&SGroupsReport{RequestID: 8, Groups: []string{"a", "b"}},
		&SMigrate{RequestID: 9, Group: "g", TargetID: 4, TargetAddr: "127.0.0.1:9002"},
		&SMigrateOffer{
			RequestID: 9, SourceID: 3, Group: "g", Persistent: true,
			BaseSeq: 5, NextSeq: 12, Digest: 0xFEED, Total: 4096,
			Members: []MemberInfo{{ClientID: 9, Name: "m", Role: RolePrincipal}},
		},
		&SMigrateChunk{RequestID: 9, Offset: 256, Data: []byte("migratebytes")},
		&SMigrateCutover{RequestID: 9, NextSeq: 12, Digest: 0xFEED},
		&SMigrateResult{RequestID: 9, OK: true, NextSeq: 12},
		&SMigrateResult{RequestID: 9, OK: false, Text: "digest mismatch"},
		&SMigrated{RequestID: 9, Group: "g", SourceID: 3, TargetID: 4, OK: true, Bytes: 4096, Released: true},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil): want error")
	}
	if _, err := Unmarshal([]byte{0xFF}); err == nil {
		t.Error("Unmarshal(unknown kind): want error")
	}
	// Truncated body: a JoinAck cut short must error, not panic.
	full := Marshal(nil, &JoinAck{RequestID: 1, Group: "g", Objects: []Object{{ID: "o", Data: []byte("abc")}}})
	for i := 1; i < len(full); i++ {
		if _, err := Unmarshal(full[:i]); err == nil {
			t.Errorf("Unmarshal(truncated to %d bytes): want error", i)
		}
	}
}

func TestUnmarshalCopiesData(t *testing.T) {
	payload := []byte("mutate-me")
	data := Marshal(nil, &Bcast{RequestID: 1, Group: "g", EvKind: EventState, ObjectID: "o", Data: payload})
	msg, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0
	}
	b, ok := msg.(*Bcast)
	if !ok {
		t.Fatalf("got %T, want *Bcast", msg)
	}
	if !bytes.Equal(b.Data, payload) {
		t.Errorf("decoded data aliases input buffer: got %q", b.Data)
	}
}

func TestDecoderHostileLengths(t *testing.T) {
	// A huge element count with a tiny buffer must fail cleanly.
	e := NewEncoder(nil)
	e.PutByte(byte(KindJoinAck))
	e.PutUvarint(1)                  // RequestID
	e.PutString("g")                 // Group
	e.PutUvarint(1)                  // NextSeq
	e.PutUvarint(0)                  // BaseSeq
	e.PutUvarint(math.MaxUint32 + 1) // object count lie
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Error("hostile object count: want error")
	}
}

func TestEncoderPrimitivesRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.PutByte(7)
	e.PutBool(true)
	e.PutBool(false)
	e.PutUvarint(1 << 40)
	e.PutVarint(-12345)
	e.PutUint32(0xDEADBEEF)
	e.PutUint64(math.MaxUint64)
	e.PutBytes([]byte("bytes"))
	e.PutString("string")

	d := NewDecoder(e.Bytes())
	if got := d.Byte(); got != 7 {
		t.Errorf("Byte = %d, want 7", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %x", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %x", got)
	}
	if got := d.Bytes(); string(got) != "bytes" {
		t.Errorf("Bytes = %q", got)
	}
	if got := d.String(); got != "string" {
		t.Errorf("String = %q", got)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.Uint64() // fails
	if d.Err() == nil {
		t.Fatal("want error after reading past end")
	}
	first := d.Err()
	_ = d.String()
	_ = d.Uvarint()
	if d.Err() != first {
		t.Errorf("error not sticky: %v != %v", d.Err(), first)
	}
}

// TestQuickEventRoundTrip property-tests Deliver (and thus Event) encoding
// over randomized field values.
func TestQuickEventRoundTrip(t *testing.T) {
	f := func(seq, sender uint64, kindBit bool, objectID string, data []byte, tstamp int64, group string) bool {
		kind := EventState
		if kindBit {
			kind = EventUpdate
		}
		in := &Deliver{Group: group, Event: Event{
			Seq: seq, Kind: kind, ObjectID: objectID, Data: data, Sender: sender, Time: tstamp,
		}}
		// The codec decodes empty data as nil; normalize for comparison.
		if len(in.Event.Data) == 0 {
			in.Event.Data = nil
		}
		out, err := Unmarshal(Marshal(nil, in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBcastRoundTrip property-tests the hot-path request message.
func TestQuickBcastRoundTrip(t *testing.T) {
	f := func(req uint64, group, objectID string, data []byte, inclusive bool) bool {
		in := &Bcast{
			RequestID: req, Group: group, EvKind: EventUpdate,
			ObjectID: objectID, Data: data, SenderInclusive: inclusive,
		}
		if len(in.Data) == 0 {
			in.Data = nil
		}
		out, err := Unmarshal(Marshal(nil, in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecoderNeverPanics feeds random bytes to Unmarshal; it must
// return an error or a message, never panic.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := range factories {
		if s := k.String(); s == "" || s[0] == 'K' && s[1] == 'i' { // "Kind(n)" fallback
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := Kind(250).String(); got != "Kind(250)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{EventState.String(), "state"},
		{EventUpdate.String(), "update"},
		{TransferFull.String(), "full"},
		{TransferLastN.String(), "last-n"},
		{TransferObjects.String(), "objects"},
		{TransferNone.String(), "none"},
		{TransferResume.String(), "resume"},
		{RolePrincipal.String(), "principal"},
		{RoleObserver.String(), "observer"},
		{MemberJoined.String(), "joined"},
		{MemberLeft.String(), "left"},
		{MemberCrashed.String(), "crashed"},
		{CodeNoSuchGroup.String(), "no-such-group"},
		{CodeShuttingDown.String(), "shutting-down"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if !EventState.Valid() || EventKind(9).Valid() {
		t.Error("EventKind.Valid misbehaves")
	}
	if !TransferResume.Valid() || TransferMode(0).Valid() {
		t.Error("TransferMode.Valid misbehaves")
	}
	if !RoleObserver.Valid() || Role(0).Valid() {
		t.Error("Role.Valid misbehaves")
	}
}

func TestMarshalReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	msg := &Ping{Nonce: 1}
	out := Marshal(buf, msg)
	if &out[0] != &buf[:1][0] {
		t.Error("Marshal did not reuse the provided buffer")
	}
}

func BenchmarkMarshalBcast1000(b *testing.B) {
	msg := &Bcast{RequestID: 1, Group: "bench", EvKind: EventUpdate, ObjectID: "o", Data: make([]byte, 1000)}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Marshal(buf[:0], msg)
	}
}

func BenchmarkUnmarshalDeliver1000(b *testing.B) {
	data := Marshal(nil, &Deliver{Group: "bench", Event: Event{
		Seq: 1, Kind: EventUpdate, ObjectID: "o", Data: make([]byte, 1000), Sender: 1, Time: 1,
	}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
