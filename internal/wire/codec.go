// Package wire defines the Corona wire protocol: the message types exchanged
// between clients and servers and between servers of a replicated service,
// together with a compact, allocation-conscious binary codec.
//
// Every message is encoded as a one-byte Kind followed by the message body.
// Bodies are built from a small set of primitives: unsigned varints,
// length-prefixed byte strings, and fixed-width integers for values that are
// hot on the decode path. The codec is hand-rolled (no reflection) so that
// encoding cost stays negligible next to the network round trip, which is the
// quantity the paper's evaluation measures.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec limits. MaxFrame bounds a whole encoded message; the transport layer
// enforces it on receive so a corrupt length prefix cannot cause an
// unbounded allocation.
const (
	// MaxFrame is the largest encoded message the protocol permits.
	MaxFrame = 64 << 20 // 64 MiB
	// MaxStringLen bounds any single string field.
	MaxStringLen = 1 << 20
)

// Codec errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrFieldTooBig = errors.New("wire: field exceeds limit")
	ErrBadVarint   = errors.New("wire: malformed varint")
)

// Encoder appends protocol primitives to a byte slice. The zero value is
// ready to use; Bytes returns the accumulated encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
// Existing contents of buf are preserved; pass buf[:0] to reuse its storage.
func NewEncoder(buf []byte) *Encoder {
	return &Encoder{buf: buf}
}

// Bytes returns the encoded bytes. The slice aliases the Encoder's internal
// buffer and is valid until the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards any encoded data, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutByte appends a single byte.
func (e *Encoder) PutByte(b byte) { e.buf = append(e.buf, b) }

// PutBool appends a boolean as one byte (0 or 1).
func (e *Encoder) PutBool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
		return
	}
	e.buf = append(e.buf, 0)
}

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutVarint appends a signed varint (zig-zag).
func (e *Encoder) PutVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutUint32 appends a fixed-width big-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends a fixed-width big-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutBytes appends a length-prefixed byte string.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder consumes protocol primitives from a byte slice. Decoding methods
// record the first error encountered; callers may batch several reads and
// check Err once, which keeps per-field decode code terse.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder reading from buf. The Decoder does not copy
// buf; byte-string fields alias it unless decoded with ByteCopy.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrBadVarint)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrBadVarint)
		return 0
	}
	d.off += n
	return v
}

// Uint32 reads a fixed-width big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 reads a fixed-width big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// Decoder's buffer; use ByteCopy when the data must outlive the buffer.
//
// corona:aliases-input — callers must not mutate the result or retain it
// past the buffer's lifetime (enforced by the aliasretain analyzer).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 || int(n) > d.Remaining() {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// ByteCopy reads a length-prefixed byte string into freshly allocated memory.
func (d *Decoder) ByteCopy() []byte {
	b := d.Bytes()
	if d.err != nil {
		return nil
	}
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > MaxStringLen {
		d.fail(fmt.Errorf("%w: string of %d bytes", ErrFieldTooBig, n))
		return ""
	}
	if int(n) > d.Remaining() {
		d.fail(ErrShortBuffer)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
