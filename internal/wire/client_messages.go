package wire

// This file defines the client↔server messages. Every request carries a
// client-assigned RequestID echoed by the matching reply so a client can
// pipeline requests over one connection.

// Hello opens a session. It is the first message on a client connection.
type Hello struct {
	RequestID uint64
	// Proto is the client's protocol version.
	Proto uint32
	// Name is a human-readable client name surfaced in membership info.
	Name string
}

// Kind implements Message.
func (*Hello) Kind() Kind { return KindHello }

// Encode implements Message.
func (m *Hello) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUint32(m.Proto)
	e.PutString(m.Name)
}

// Decode implements Message.
func (m *Hello) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Proto = d.Uint32()
	m.Name = d.String()
	return d.Err()
}

// HelloAck completes session setup and assigns the client its ID.
type HelloAck struct {
	RequestID uint64
	ClientID  uint64
	// ServerID names the serving process (useful against a replicated
	// service, where clients of different servers compare notes).
	ServerID uint64
}

// Kind implements Message.
func (*HelloAck) Kind() Kind { return KindHelloAck }

// Encode implements Message.
func (m *HelloAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.ClientID)
	e.PutUvarint(m.ServerID)
}

// Decode implements Message.
func (m *HelloAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.ClientID = d.Uvarint()
	m.ServerID = d.Uvarint()
	return d.Err()
}

// CreateGroup creates a group with an optional initial shared state.
type CreateGroup struct {
	RequestID  uint64
	Group      string
	Persistent bool
	// Initial is the initial shared state: a set of objects.
	Initial []Object
}

// Kind implements Message.
func (*CreateGroup) Kind() Kind { return KindCreateGroup }

// Encode implements Message.
func (m *CreateGroup) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutBool(m.Persistent)
	encodeObjects(e, m.Initial)
}

// Decode implements Message.
func (m *CreateGroup) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Persistent = d.Bool()
	m.Initial = decodeObjects(d)
	return d.Err()
}

// CreateGroupAck confirms group creation.
type CreateGroupAck struct {
	RequestID uint64
}

// Kind implements Message.
func (*CreateGroupAck) Kind() Kind { return KindCreateGroupAck }

// Encode implements Message.
func (m *CreateGroupAck) Encode(e *Encoder) { e.PutUvarint(m.RequestID) }

// Decode implements Message.
func (m *CreateGroupAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	return d.Err()
}

// DeleteGroup deletes a group; its shared state is lost (paper §3.2: the
// service deletes a group only in response to deleteGroup).
type DeleteGroup struct {
	RequestID uint64
	Group     string
}

// Kind implements Message.
func (*DeleteGroup) Kind() Kind { return KindDeleteGroup }

// Encode implements Message.
func (m *DeleteGroup) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
}

// Decode implements Message.
func (m *DeleteGroup) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	return d.Err()
}

// DeleteGroupAck confirms group deletion.
type DeleteGroupAck struct {
	RequestID uint64
}

// Kind implements Message.
func (*DeleteGroupAck) Kind() Kind { return KindDeleteGroupAck }

// Encode implements Message.
func (m *DeleteGroupAck) Encode(e *Encoder) { e.PutUvarint(m.RequestID) }

// Decode implements Message.
func (m *DeleteGroupAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	return d.Err()
}

// Join adds the client to a group and requests a state transfer. The join
// protocol involves only the client and the server, never the existing
// members.
type Join struct {
	RequestID uint64
	Group     string
	Policy    TransferPolicy
	Role      Role
	// Notify subscribes the client to membership-change notifications for
	// this group.
	Notify bool
	// CreateIfMissing implicitly creates a transient group on first join,
	// a convenience for publish/subscribe uses.
	CreateIfMissing bool
}

// Kind implements Message.
func (*Join) Kind() Kind { return KindJoin }

// Encode implements Message.
func (m *Join) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	m.Policy.encode(e)
	e.PutByte(byte(m.Role))
	e.PutBool(m.Notify)
	e.PutBool(m.CreateIfMissing)
}

// Decode implements Message.
func (m *Join) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Policy = decodeTransferPolicy(d)
	m.Role = Role(d.Byte())
	m.Notify = d.Bool()
	m.CreateIfMissing = d.Bool()
	return d.Err()
}

// JoinAck carries the requested state transfer and the current membership.
//
// Depending on the transfer policy, the state arrives as Objects (full or
// per-object snapshots), as Events (incremental updates), or both (resume
// from a checkpointed base). For large transfers the server instead sets
// Streaming and leaves Objects/Events empty: the payload follows as
// TransferChunk frames terminated by TransferDone, concurrently with live
// Delivers for seq >= NextSeq.
type JoinAck struct {
	RequestID uint64
	Group     string
	// NextSeq is the sequence number the first post-join delivery will
	// carry; everything the client needs before that is in this ack.
	NextSeq uint64
	// BaseSeq is the sequence number the snapshot Objects incorporate
	// (the group's checkpoint point; 0 if Objects reflect no events).
	BaseSeq uint64
	Objects []Object
	Events  []Event
	Members []MemberInfo
	// Streaming marks a chunked transfer: Objects and Events arrive in
	// subsequent TransferChunk frames instead of inline.
	Streaming bool
}

// Kind implements Message.
func (*JoinAck) Kind() Kind { return KindJoinAck }

// Encode implements Message.
func (m *JoinAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.NextSeq)
	e.PutUvarint(m.BaseSeq)
	encodeObjects(e, m.Objects)
	encodeEvents(e, m.Events)
	encodeMembers(e, m.Members)
	e.PutBool(m.Streaming)
}

// Decode implements Message.
func (m *JoinAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.NextSeq = d.Uvarint()
	m.BaseSeq = d.Uvarint()
	m.Objects = decodeObjects(d)
	m.Events = decodeEvents(d)
	m.Members = decodeMembers(d)
	m.Streaming = d.Bool()
	return d.Err()
}

// TransferChunk carries one contiguous slice of a streamed state-transfer
// payload. The concatenation of all chunks for a join, in offset order, is
// the standard encoding of the transfer's objects followed by its events
// (see DecodeTransferPayload). Chunks for one join arrive in order on the
// member's connection.
type TransferChunk struct {
	// RequestID echoes the Join that opened the transfer.
	RequestID uint64
	Group     string
	// Offset is this chunk's starting byte position within the payload.
	Offset uint64
	// Total is the payload size in bytes, repeated in every chunk so
	// progress can be reported from any of them.
	Total uint64
	// Data aliases the decode buffer: it is valid only until the
	// connection's next read. The receiver appends it to its reassembly
	// buffer immediately, so a per-chunk defensive copy would only double
	// the transfer's allocation volume.
	Data []byte
}

// Kind implements Message.
func (*TransferChunk) Kind() Kind { return KindTransferChunk }

// Encode implements Message.
func (m *TransferChunk) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.Offset)
	e.PutUvarint(m.Total)
	e.PutBytes(m.Data)
}

// Decode implements Message.
func (m *TransferChunk) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Offset = d.Uvarint()
	m.Total = d.Uvarint()
	//lint:allow aliasretain Data documents the aliasing contract: valid until the next read, appended immediately
	m.Data = d.Bytes()
	return d.Err()
}

// TransferDone terminates a streamed state transfer: every chunk has been
// sent and the client may decode the reassembled payload.
type TransferDone struct {
	// RequestID echoes the Join that opened the transfer.
	RequestID uint64
	Group     string
	// Bytes is the total payload size; the client verifies it received
	// exactly this many bytes before decoding.
	Bytes uint64
}

// Kind implements Message.
func (*TransferDone) Kind() Kind { return KindTransferDone }

// Encode implements Message.
func (m *TransferDone) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.Bytes)
}

// Decode implements Message.
func (m *TransferDone) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Bytes = d.Uvarint()
	return d.Err()
}

// Leave removes the client from a group.
type Leave struct {
	RequestID uint64
	Group     string
}

// Kind implements Message.
func (*Leave) Kind() Kind { return KindLeave }

// Encode implements Message.
func (m *Leave) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
}

// Decode implements Message.
func (m *Leave) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	return d.Err()
}

// LeaveAck confirms a leave.
type LeaveAck struct {
	RequestID uint64
}

// Kind implements Message.
func (*LeaveAck) Kind() Kind { return KindLeaveAck }

// Encode implements Message.
func (m *LeaveAck) Encode(e *Encoder) { e.PutUvarint(m.RequestID) }

// Decode implements Message.
func (m *LeaveAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	return d.Err()
}

// GetMembership asks for the current membership of a group (paper §3.2: a
// member may query the service for membership information at any time).
type GetMembership struct {
	RequestID uint64
	Group     string
}

// Kind implements Message.
func (*GetMembership) Kind() Kind { return KindGetMembership }

// Encode implements Message.
func (m *GetMembership) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
}

// Decode implements Message.
func (m *GetMembership) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	return d.Err()
}

// MembershipInfo answers GetMembership.
type MembershipInfo struct {
	RequestID uint64
	Group     string
	Members   []MemberInfo
}

// Kind implements Message.
func (*MembershipInfo) Kind() Kind { return KindMembershipInfo }

// Encode implements Message.
func (m *MembershipInfo) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	encodeMembers(e, m.Members)
}

// Decode implements Message.
func (m *MembershipInfo) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Members = decodeMembers(d)
	return d.Err()
}

// MembershipNotify is pushed to subscribed members when a group's
// membership changes.
type MembershipNotify struct {
	Group  string
	Change MembershipChange
	Member MemberInfo
	// Count is the group size after the change.
	Count uint32
}

// Kind implements Message.
func (*MembershipNotify) Kind() Kind { return KindMembershipNotify }

// Encode implements Message.
func (m *MembershipNotify) Encode(e *Encoder) {
	e.PutString(m.Group)
	e.PutByte(byte(m.Change))
	m.Member.encode(e)
	e.PutUint32(m.Count)
}

// Decode implements Message.
func (m *MembershipNotify) Decode(d *Decoder) error {
	m.Group = d.String()
	m.Change = MembershipChange(d.Byte())
	m.Member = decodeMemberInfo(d)
	m.Count = d.Uint32()
	return d.Err()
}

// Bcast submits a multicast to the group. Kind selects bcastState (replace
// the object's state) or bcastUpdate (append an incremental change).
type Bcast struct {
	RequestID uint64
	Group     string
	EvKind    EventKind
	ObjectID  string
	Data      []byte
	// SenderInclusive asks the service to deliver the message back to the
	// sender too (with the server-assigned timestamp and sequence number).
	SenderInclusive bool
}

// Kind implements Message.
func (*Bcast) Kind() Kind { return KindBcast }

// Encode implements Message.
func (m *Bcast) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutByte(byte(m.EvKind))
	e.PutString(m.ObjectID)
	e.PutBytes(m.Data)
	e.PutBool(m.SenderInclusive)
}

// Decode implements Message.
func (m *Bcast) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.EvKind = EventKind(d.Byte())
	m.ObjectID = d.String()
	m.Data = d.ByteCopy()
	m.SenderInclusive = d.Bool()
	return d.Err()
}

// BcastAck reports the sequence number assigned to a Bcast. It doubles as
// the sender's flow-control signal.
type BcastAck struct {
	RequestID uint64
	Seq       uint64
}

// Kind implements Message.
func (*BcastAck) Kind() Kind { return KindBcastAck }

// Encode implements Message.
func (m *BcastAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.Seq)
}

// Decode implements Message.
func (m *BcastAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Seq = d.Uvarint()
	return d.Err()
}

// Deliver pushes one sequenced group event to a member.
type Deliver struct {
	Group string
	Event Event
}

// Kind implements Message.
func (*Deliver) Kind() Kind { return KindDeliver }

// Encode implements Message.
func (m *Deliver) Encode(e *Encoder) {
	e.PutString(m.Group)
	m.Event.encode(e)
}

// Decode implements Message.
func (m *Deliver) Decode(d *Decoder) error {
	m.Group = d.String()
	m.Event = decodeEvent(d)
	return d.Err()
}

// DeliverBatch pushes a run of sequenced group events to a member in one
// frame. The events are in sequence order and carry the same guarantees as
// an equivalent run of Deliver frames — the batch is purely an ingest/fanout
// amortization, invisible to the ordering contract. A batch is never empty
// on the wire; decoding an empty one yields a nil Events slice.
type DeliverBatch struct {
	Group  string
	Events []Event
}

// Kind implements Message.
func (*DeliverBatch) Kind() Kind { return KindDeliverBatch }

// Encode implements Message.
func (m *DeliverBatch) Encode(e *Encoder) {
	e.PutString(m.Group)
	encodeEvents(e, m.Events)
}

// Decode implements Message.
func (m *DeliverBatch) Decode(d *Decoder) error {
	m.Group = d.String()
	m.Events = decodeEvents(d)
	return d.Err()
}

// LockAcquire requests a named lock within a group (paper §3.2: interfaces
// for synchronizing client updates through locks).
type LockAcquire struct {
	RequestID uint64
	Group     string
	Name      string
	// Wait queues the request behind the current holder instead of
	// failing immediately.
	Wait bool
}

// Kind implements Message.
func (*LockAcquire) Kind() Kind { return KindLockAcquire }

// Encode implements Message.
func (m *LockAcquire) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutString(m.Name)
	e.PutBool(m.Wait)
}

// Decode implements Message.
func (m *LockAcquire) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Name = d.String()
	m.Wait = d.Bool()
	return d.Err()
}

// LockRelease releases a held lock.
type LockRelease struct {
	RequestID uint64
	Group     string
	Name      string
}

// Kind implements Message.
func (*LockRelease) Kind() Kind { return KindLockRelease }

// Encode implements Message.
func (m *LockRelease) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutString(m.Name)
}

// Decode implements Message.
func (m *LockRelease) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.Name = d.String()
	return d.Err()
}

// LockReply answers LockAcquire (possibly after queuing) and LockRelease.
type LockReply struct {
	RequestID uint64
	Granted   bool
	// Holder is the current lock owner when the request was denied.
	Holder uint64
}

// Kind implements Message.
func (*LockReply) Kind() Kind { return KindLockReply }

// Encode implements Message.
func (m *LockReply) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutBool(m.Granted)
	e.PutUvarint(m.Holder)
}

// Decode implements Message.
func (m *LockReply) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Granted = d.Bool()
	m.Holder = d.Uvarint()
	return d.Err()
}

// ReduceLog asks the service to trim the group's update history up to
// UpToSeq, replacing it with the consistent state at that point (paper
// §3.2, state log reduction). UpToSeq of 0 means "up to the latest".
type ReduceLog struct {
	RequestID uint64
	Group     string
	UpToSeq   uint64
}

// Kind implements Message.
func (*ReduceLog) Kind() Kind { return KindReduceLog }

// Encode implements Message.
func (m *ReduceLog) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutString(m.Group)
	e.PutUvarint(m.UpToSeq)
}

// Decode implements Message.
func (m *ReduceLog) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Group = d.String()
	m.UpToSeq = d.Uvarint()
	return d.Err()
}

// ReduceLogAck reports the group's new checkpoint base.
type ReduceLogAck struct {
	RequestID uint64
	// BaseSeq is the sequence number of the new checkpoint.
	BaseSeq uint64
	// Trimmed is the number of history entries discarded.
	Trimmed uint64
}

// Kind implements Message.
func (*ReduceLogAck) Kind() Kind { return KindReduceLogAck }

// Encode implements Message.
func (m *ReduceLogAck) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(m.BaseSeq)
	e.PutUvarint(m.Trimmed)
}

// Decode implements Message.
func (m *ReduceLogAck) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.BaseSeq = d.Uvarint()
	m.Trimmed = d.Uvarint()
	return d.Err()
}

// ListGroups asks for the names of all groups known to the service.
type ListGroups struct {
	RequestID uint64
}

// Kind implements Message.
func (*ListGroups) Kind() Kind { return KindListGroups }

// Encode implements Message.
func (m *ListGroups) Encode(e *Encoder) { e.PutUvarint(m.RequestID) }

// Decode implements Message.
func (m *ListGroups) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	return d.Err()
}

// GroupList answers ListGroups.
type GroupList struct {
	RequestID uint64
	Groups    []string
}

// Kind implements Message.
func (*GroupList) Kind() Kind { return KindGroupList }

// Encode implements Message.
func (m *GroupList) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(uint64(len(m.Groups)))
	for _, g := range m.Groups {
		e.PutString(g)
	}
}

// Decode implements Message.
func (m *GroupList) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	n := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if n > uint64(d.Remaining()) {
		return ErrShortBuffer
	}
	if n > 0 {
		m.Groups = make([]string, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			m.Groups = append(m.Groups, d.String())
		}
	}
	return d.Err()
}

// Ping is a liveness probe; either side may send it.
type Ping struct {
	Nonce uint64
}

// Kind implements Message.
func (*Ping) Kind() Kind { return KindPing }

// Encode implements Message.
func (m *Ping) Encode(e *Encoder) { e.PutUvarint(m.Nonce) }

// Decode implements Message.
func (m *Ping) Decode(d *Decoder) error {
	m.Nonce = d.Uvarint()
	return d.Err()
}

// Pong answers Ping, echoing the nonce.
type Pong struct {
	Nonce uint64
}

// Kind implements Message.
func (*Pong) Kind() Kind { return KindPong }

// Encode implements Message.
func (m *Pong) Encode(e *Encoder) { e.PutUvarint(m.Nonce) }

// Decode implements Message.
func (m *Pong) Decode(d *Decoder) error {
	m.Nonce = d.Uvarint()
	return d.Err()
}

// ErrorMsg reports a request failure. RequestID of 0 marks a connection-
// level error after which the peer will close.
type ErrorMsg struct {
	RequestID uint64
	Code      ErrCode
	Text      string
}

// Kind implements Message.
func (*ErrorMsg) Kind() Kind { return KindError }

// Encode implements Message.
func (m *ErrorMsg) Encode(e *Encoder) {
	e.PutUvarint(m.RequestID)
	e.PutUvarint(uint64(m.Code))
	e.PutString(m.Text)
}

// Decode implements Message.
func (m *ErrorMsg) Decode(d *Decoder) error {
	m.RequestID = d.Uvarint()
	m.Code = ErrCode(d.Uvarint())
	m.Text = d.String()
	return d.Err()
}
