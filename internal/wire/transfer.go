package wire

import "fmt"

// TransferChunkSize is the default payload size of one TransferChunk. It is
// small enough that a chunk never monopolizes a member's pump (live Delivers
// interleave between chunks) and large enough that framing overhead is
// negligible against the payload.
const TransferChunkSize = 256 << 10

// TransferStream incrementally encodes a state-transfer payload — the
// standard encoding of objects followed by events, exactly as a non-streamed
// JoinAck would carry them — without ever materializing the whole payload or
// copying the object/event data buffers. The stream keeps a segment list:
// small header segments (counts, IDs, length prefixes) built once into a
// private buffer, interleaved with the caller's data slices, which are
// shared, not copied. Building a stream is therefore O(#objects + #events)
// regardless of payload bytes.
//
// The caller must not mutate the objects' or events' Data buffers while the
// stream is live. A state.Transfer provides exactly that guarantee.
type TransferStream struct {
	segs  [][]byte
	pos   int // current segment
	off   int // consumed bytes of segs[pos]
	total uint64
	sent  uint64
	buf   []byte // reusable chunk buffer
}

// NewTransferStream returns a stream over the given payload. The Data
// slices of objects and events are shared until the stream is drained.
//
// corona:zerocopy — the stream interleaves the shared buffers into chunks
// without cloning the payload (Next's bounded chunk buffer is the only
// copy); adding defensive copies here regresses PR 3's O(1) capture.
func NewTransferStream(objects []Object, events []Event) *TransferStream {
	e := NewEncoder(nil)
	// cuts[i] is the header-buffer offset at which shared[i] interleaves.
	cuts := make([]int, 0, len(objects)+len(events))
	shared := make([][]byte, 0, len(objects)+len(events))

	e.PutUvarint(uint64(len(objects)))
	for i := range objects {
		e.PutString(objects[i].ID)
		e.PutUvarint(uint64(len(objects[i].Data)))
		cuts = append(cuts, e.Len())
		shared = append(shared, objects[i].Data)
	}
	e.PutUvarint(uint64(len(events)))
	for i := range events {
		ev := &events[i]
		e.PutUvarint(ev.Seq)
		e.PutByte(byte(ev.Kind))
		e.PutString(ev.ObjectID)
		e.PutUvarint(uint64(len(ev.Data)))
		cuts = append(cuts, e.Len())
		shared = append(shared, ev.Data)
		e.PutUvarint(ev.Sender)
		e.PutVarint(ev.Time)
	}

	// The header buffer is complete; only now is it safe to slice it
	// (earlier appends could have reallocated it).
	hdr := e.Bytes()
	s := &TransferStream{segs: make([][]byte, 0, 2*len(shared)+1)}
	prev := 0
	for i, c := range cuts {
		if c > prev {
			s.segs = append(s.segs, hdr[prev:c])
		}
		if len(shared[i]) > 0 {
			s.segs = append(s.segs, shared[i])
		}
		prev = c
	}
	if len(hdr) > prev {
		s.segs = append(s.segs, hdr[prev:])
	}
	for _, seg := range s.segs {
		s.total += uint64(len(seg))
	}
	return s
}

// Total returns the payload size in bytes.
func (s *TransferStream) Total() uint64 { return s.total }

// Remaining returns the bytes not yet produced by Next.
func (s *TransferStream) Remaining() uint64 { return s.total - s.sent }

// Next produces the next chunk of at most max bytes, together with its
// starting offset. It returns a nil chunk once the stream is drained. The
// returned slice is reused by the following Next call; the caller must
// consume (or copy) it first.
func (s *TransferStream) Next(max int) (chunk []byte, offset uint64) {
	if max <= 0 || s.sent == s.total {
		return nil, s.sent
	}
	offset = s.sent
	s.buf = s.buf[:0]
	for len(s.buf) < max && s.pos < len(s.segs) {
		seg := s.segs[s.pos][s.off:]
		if n := max - len(s.buf); n < len(seg) {
			s.buf = append(s.buf, seg[:n]...)
			s.off += n
		} else {
			s.buf = append(s.buf, seg...)
			s.pos++
			s.off = 0
		}
	}
	s.sent += uint64(len(s.buf))
	return s.buf, offset
}

// DecodeTransferPayload decodes a reassembled transfer payload into its
// objects and events. It is the inverse of draining a TransferStream.
//
// Object and event Data alias data: the caller hands over ownership of the
// buffer. The payload of a large transfer is decoded exactly once, so
// copying it out again would double the join's allocation volume for no
// benefit.
//
// corona:aliases-input — and corona:zerocopy on the decode path itself.
func DecodeTransferPayload(data []byte) ([]Object, []Event, error) {
	d := NewDecoder(data)
	objs := decodeObjectsAlias(d)
	evs := decodeEventsAlias(d)
	if err := d.Err(); err != nil {
		return nil, nil, fmt.Errorf("wire: decode transfer payload: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, nil, fmt.Errorf("wire: transfer payload has %d trailing bytes", d.Remaining())
	}
	return objs, evs, nil
}
