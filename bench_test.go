// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§5), driven by the same harness as cmd/corona-bench so `go test -bench`
// and the CLI agree. Latency benchmarks report one probe round trip per
// iteration; throughput benchmarks report KB/s via b.ReportMetric.
//
//	go test -bench=. -benchmem
package corona_test

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"corona/internal/bench"
	"corona/internal/wal"
)

// benchProbeRTT runs one probe round trip per iteration against addrs.
func benchProbeRTT(b *testing.B, addrs []string, clients, msgSize int, stateful bool) {
	b.Helper()
	p, err := bench.NewProbe(addrs, clients, msgSize, stateful)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	// One untimed warmup round trip settles connections and buffers.
	if _, err := p.RoundTrip(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RoundTrip(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3RoundTrip reproduces Figure 3: round-trip delay vs. number
// of clients for 1000-byte messages at a single server, stateful vs. the
// stateless (sequencer-only) baseline. Expect both series to grow linearly
// with the client count and to track each other closely.
func BenchmarkFig3RoundTrip(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40, 60} {
		for _, stateful := range []bool{true, false} {
			mode := "stateless"
			dir := ""
			if stateful {
				mode = "stateful"
				dir = b.TempDir()
			}
			b.Run(fmt.Sprintf("clients=%d/%s", n, mode), func(b *testing.B) {
				addr, shutdown, err := bench.StartSingle(stateful, dir, wal.SyncNever)
				if err != nil {
					b.Fatal(err)
				}
				defer shutdown()
				benchProbeRTT(b, []string{addr}, n, 1000, stateful)
			})
		}
	}
}

// BenchmarkSizeSweep reproduces the §5.2 message-size observation: sizes
// up to a few hundred bytes make little difference; 1000 bytes and above
// matter, and 10000 bytes steepen the slope.
func BenchmarkSizeSweep(b *testing.B) {
	for _, size := range []int{100, 400, 1000, 4000, 10000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			addr, shutdown, err := bench.StartSingle(true, "", wal.SyncNever)
			if err != nil {
				b.Fatal(err)
			}
			defer shutdown()
			b.SetBytes(int64(size))
			benchProbeRTT(b, []string{addr}, 20, size, true)
		})
	}
}

// BenchmarkTable1Throughput reproduces Table 1: server throughput with 6
// blasting clients at 1000- and 10000-byte messages. The paper's two rows
// (two server hosts) map to the logging-policy axis available here:
// memory-only vs. disk logging.
func BenchmarkTable1Throughput(b *testing.B) {
	cases := []struct {
		name string
		disk bool
		sync wal.SyncPolicy
	}{
		{"memory", false, wal.SyncNever},
		{"disk", true, wal.SyncInterval},
	}
	for _, size := range []int{1000, 10000} {
		for _, c := range cases {
			b.Run(fmt.Sprintf("size=%d/%s", size, c.name), func(b *testing.B) {
				dir := ""
				if c.disk {
					dir = b.TempDir()
				}
				b.ReportAllocs()
				var kbps float64
				for i := 0; i < b.N; i++ {
					res, err := bench.RunThroughput(bench.ThroughputConfig{
						Clients: 6, MsgSize: size,
						Duration: 500 * time.Millisecond,
						Dir:      dir, Sync: c.sync,
					})
					if err != nil {
						b.Fatal(err)
					}
					kbps = res.IngestedKBps
				}
				b.ReportMetric(kbps, "KB/s")
			})
		}
	}
}

// BenchmarkMultigroupScaling measures aggregate throughput as a blasting
// load is spread over disjoint groups — the sharded engine's parallel
// multicast path. On a multicore machine the KB/s metric should rise with
// the group count; allocs/op guards the pooled fanout frames.
func BenchmarkMultigroupScaling(b *testing.B) {
	for _, groups := range []int{1, 4} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			var kbps float64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunMultigroup(bench.MultigroupConfig{
					GroupCounts: []int{groups},
					Duration:    500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				kbps = points[0].IngestedKBps
			}
			b.ReportMetric(kbps, "KB/s")
		})
	}
}

// BenchmarkTable2Replicated reproduces Table 2: round-trip delay for a
// 1000-byte multicast at rising client counts, single server vs. a
// replicated service (coordinator + 6 servers, clients spread evenly).
// Expect the replicated service to win, with the gap growing with the
// client count.
func BenchmarkTable2Replicated(b *testing.B) {
	for _, n := range []int{50, 100, 150} {
		b.Run(fmt.Sprintf("clients=%d/single", n), func(b *testing.B) {
			addr, shutdown, err := bench.StartSingle(true, "", wal.SyncNever)
			if err != nil {
				b.Fatal(err)
			}
			defer shutdown()
			benchProbeRTT(b, []string{addr}, n, 1000, true)
		})
		b.Run(fmt.Sprintf("clients=%d/replicated", n), func(b *testing.B) {
			addrs, shutdown, err := bench.StartReplicated(6)
			if err != nil {
				b.Fatal(err)
			}
			defer shutdown()
			benchProbeRTT(b, addrs, n, 1000, true)
		})
	}
}

// BenchmarkJoinStateTransfer is ablation A1: join latency under each
// state-transfer policy against a group with a long update history.
func BenchmarkJoinStateTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunJoinTransfer(bench.JoinTransferConfig{
			History: 1000, UpdateSize: 500, Objects: 8, LastN: 20, Joins: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				unit := strings.ReplaceAll(r.Policy, " ", "-") + "-ms"
				b.ReportMetric(float64(r.Stats.Mean)/1e6, unit)
			}
		}
	}
}

// BenchmarkLogReduction is ablation A2: the effect of state-log reduction
// on join latency and retained history.
func BenchmarkLogReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh directory per iteration: the persistent group must
		// not be recovered from the previous iteration's log.
		dir, err := os.MkdirTemp(b.TempDir(), "logred")
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.RunLogReduction(1000, 500, 10, dir)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.JoinFullBefore.Mean)/1e6, "join-before-ms")
			b.ReportMetric(float64(res.JoinFullAfter.Mean)/1e6, "join-after-ms")
		}
	}
}

// BenchmarkRelaxedDelivery is ablation A3: the strict coordinator-
// sequenced data path vs. the relaxed local-first membership path on a
// two-server cluster.
func BenchmarkRelaxedDelivery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRelaxed(50)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.StrictData.Mean)/1e6, "strict-ms")
			b.ReportMetric(float64(res.LocalFirstNoti.Mean)/1e6, "local-ms")
		}
	}
}

// BenchmarkQoSPriority is ablation A4: control-group delivery latency at a
// receiver flooded by a bulk group, with and without priority scheduling.
func BenchmarkQoSPriority(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunQoS(30)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.WithoutPriority.P50)/1e6, "noprio-p50-ms")
			b.ReportMetric(float64(res.WithPriority.P50)/1e6, "prio-p50-ms")
		}
	}
}
