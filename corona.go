// Package corona is a stateful group communication service, a from-scratch
// reproduction of "Stateful Group Communication Services" (Litiu & Prakash,
// ICDCS 1999).
//
// Corona provides reliable group multicast for collaboration tools and data
// dissemination in environments where clients connect and disconnect
// independently. Unlike classic group communication systems that replicate
// all state at the clients, the Corona service itself maintains each
// group's shared state — a set of type-opaque objects updated through the
// multicast primitives — so that:
//
//   - new clients join fast, with a customizable state transfer (full
//     state, the latest N updates, selected objects, or a resume-from-
//     sequence-number suffix), without involving the existing members;
//   - persistent groups and their state outlive both their members and
//     the server process (stable-storage logging with checkpoints);
//   - client crashes cannot lose group state, and reconnecting clients
//     resynchronize incrementally.
//
// The package is a facade over the implementation packages:
//
//   - Dial / Client — the client library (join, multicast, locks,
//     membership, reconnect).
//   - NewServer / Server — the standalone single-server service.
//   - NewCoordinator + NewClusterServer — the replicated service: a
//     star of servers around a sequencing coordinator, with heartbeat
//     failure detection, backup replicas, and coordinator succession.
//
// See the examples directory for runnable programs: a quickstart, a chat
// box, a shared whiteboard, a publish/subscribe data feed, and a cluster
// failover drill.
package corona

import (
	"corona/internal/client"
	"corona/internal/cluster"
	"corona/internal/core"
	"corona/internal/membership"
	"corona/internal/view"
	"corona/internal/wal"
	"corona/internal/wire"
)

// Client-side types.
type (
	// Client is a connection to a Corona service.
	Client = client.Client
	// ClientConfig configures Dial.
	ClientConfig = client.Config
	// JoinOptions selects the state transfer and role for a Join.
	JoinOptions = client.JoinOptions
	// JoinResult is the state transfer delivered with a join.
	JoinResult = client.JoinResult
	// ServerError is a request failure reported by the service.
	ServerError = client.ServerError
	// View is a client-side materialized group state (the paper's
	// shared-object model at the client).
	View = view.View
)

// NewView returns an empty client-side state view; wire its ApplyEvent
// into ClientConfig.OnEvent and feed join results to ApplyJoin.
func NewView() *View { return view.New() }

// Service-side types.
type (
	// Server is the standalone single-server Corona service.
	Server = core.Server
	// ServerConfig configures NewServer.
	ServerConfig = core.Config
	// EngineConfig carries the service-engine settings (persistence,
	// durability, statelessness, authorization, log-reduction policy).
	EngineConfig = core.EngineConfig
	// Coordinator is the sequencing hub of a replicated service.
	Coordinator = cluster.Coordinator
	// CoordinatorConfig configures NewCoordinator.
	CoordinatorConfig = cluster.CoordinatorConfig
	// ClusterServer is a member server of a replicated service.
	ClusterServer = cluster.Server
	// ClusterServerConfig configures NewClusterServer.
	ClusterServerConfig = cluster.ServerConfig
	// SessionManager authorizes membership actions (external workspace
	// session manager hook).
	SessionManager = membership.SessionManager
	// Action is a membership operation submitted to a SessionManager.
	Action = membership.Action
	// ACL is a rule-based SessionManager (access control).
	ACL = membership.ACL
	// ACLRule grants capabilities on matching groups.
	ACLRule = membership.ACLRule
	// Priority is a group's delivery scheduling class (QoS).
	Priority = core.Priority
	// DivergenceReport describes a detected post-partition divergence.
	DivergenceReport = cluster.DivergenceReport
	// Resolution selects how a divergence is settled.
	Resolution = wire.Resolution
)

// Protocol types shared by clients and services.
type (
	// Event is one sequenced group multicast.
	Event = wire.Event
	// EventKind distinguishes bcastState from bcastUpdate.
	EventKind = wire.EventKind
	// Object is one element of a group's shared state.
	Object = wire.Object
	// MemberInfo describes one group member.
	MemberInfo = wire.MemberInfo
	// MembershipNotify is a pushed membership-change notification.
	MembershipNotify = wire.MembershipNotify
	// MembershipChange is the cause of a notification.
	MembershipChange = wire.MembershipChange
	// TransferPolicy customizes the state transfer at join.
	TransferPolicy = wire.TransferPolicy
	// TransferMode enumerates the transfer policies.
	TransferMode = wire.TransferMode
	// Role is a member's relationship to a group.
	Role = wire.Role
	// SyncPolicy selects the stable-storage durability level.
	SyncPolicy = wal.SyncPolicy
)

// Event kinds.
const (
	// EventState replaces an object's state (bcastState).
	EventState = wire.EventState
	// EventUpdate appends an incremental change (bcastUpdate).
	EventUpdate = wire.EventUpdate
)

// Transfer modes.
const (
	TransferFull    = wire.TransferFull
	TransferLastN   = wire.TransferLastN
	TransferObjects = wire.TransferObjects
	TransferNone    = wire.TransferNone
	TransferResume  = wire.TransferResume
)

// Member roles.
const (
	RolePrincipal = wire.RolePrincipal
	RoleObserver  = wire.RoleObserver
)

// Membership changes.
const (
	MemberJoined  = wire.MemberJoined
	MemberLeft    = wire.MemberLeft
	MemberCrashed = wire.MemberCrashed
)

// Durability policies for the stable-storage log.
const (
	SyncNever    = wal.SyncNever
	SyncInterval = wal.SyncInterval
	SyncAlways   = wal.SyncAlways
)

// Membership actions (SessionManager).
const (
	ActionCreate = membership.ActionCreate
	ActionDelete = membership.ActionDelete
	ActionJoin   = membership.ActionJoin
	ActionLeave  = membership.ActionLeave
)

// Delivery priorities (QoS scheduling).
const (
	PriorityNormal = core.PriorityNormal
	PriorityHigh   = core.PriorityHigh
)

// Divergence resolutions (replicated service, post-partition).
const (
	ResolutionRollback = wire.ResolutionRollback
	ResolutionAdopt    = wire.ResolutionAdopt
	ResolutionFork     = wire.ResolutionFork
)

// NewACL builds a rule-based access-control SessionManager.
func NewACL(defaultAllow bool, rules ...ACLRule) (*ACL, error) {
	return membership.NewACL(defaultAllow, rules...)
}

// Dial connects a client to a Corona service (standalone server or any
// server of a replicated service).
func Dial(cfg ClientConfig) (*Client, error) { return client.Dial(cfg) }

// NewServer builds a standalone Corona server. Call Start to begin
// accepting clients.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// NewCoordinator builds the coordinator of a replicated Corona service.
// Call Start to begin accepting servers.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// NewClusterServer builds a member server of a replicated Corona service.
// Call Start to register with the coordinator and begin serving clients.
func NewClusterServer(cfg ClusterServerConfig) (*ClusterServer, error) {
	return cluster.NewServer(cfg)
}

// FullTransfer is the default transfer policy: the whole group state.
var FullTransfer = wire.FullTransfer
